// Explore the STCL trade-off the paper exposes as a user knob
// (Section 5: "exploration of more efficient solutions at the expense of
// longer thermal simulation times through a user selectable parameter").
//
// For a fixed TL, sweeps STCL and prints schedule length, simulation
// effort and max temperature, so a test engineer can pick the knee.
//
// The STCL values are independent, so core::sweep_stcl fans them across
// a thread pool: every per-STCL scheduler run gets its own
// ThermalAnalyzer (effort accounting is not thread-safe) but all of
// them share one RCModel, whose factorizations are computed once
// through the solver cache and back-substituted by every thread. The
// `thermosched sweep` subcommand is the CLI twin of this example.
//
//   ./explore_stcl [--tl 155] [--stcl-min 20] [--stcl-max 100] [--step 10]
//                  [--threads 0] [--csv]
#include <iostream>
#include <memory>

#include "core/stcl_sweep.hpp"
#include "soc/alpha.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace thermo;

  double tl = 155.0;
  double stcl_min = 20.0, stcl_max = 100.0, step = 10.0;
  long long threads = 0;
  bool csv = false;
  CliParser cli("explore_stcl", "Sweep STCL and report the trade-off");
  cli.add_double("tl", "Temperature limit TL [deg C]", &tl);
  cli.add_double("stcl-min", "Smallest STCL", &stcl_min);
  cli.add_double("stcl-max", "Largest STCL", &stcl_max);
  cli.add_double("step", "STCL increment", &step);
  cli.add_int("threads", "Worker threads, 0 = all cores", &threads);
  cli.add_flag("csv", "Emit CSV instead of an aligned table", &csv);
  std::vector<double> stcls;
  try {
    if (!cli.parse(argc, argv)) return 0;
    stcls = core::stcl_range(stcl_min, stcl_max, step);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage();
    return 1;
  }

  const core::SocSpec soc = soc::alpha_soc();
  const auto model =
      std::make_shared<const thermal::RCModel>(soc.flp, soc.package);

  core::StclSweepConfig config;
  config.threads = threads > 0 ? static_cast<std::size_t>(threads) : 0;
  config.scheduler.temperature_limit = tl;
  config.scheduler.model.stc_scale = soc::alpha_stc_scale();
  std::vector<core::StclSweepPoint> points;
  try {
    points = core::sweep_stcl(soc, model, stcls, config);
  } catch (const Error& e) {
    // E.g. a TL no solo core can meet (solo_policy defaults to kThrow).
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  Table table({"STCL", "length [s]", "effort [s]", "sessions", "max temp [C]",
               "discards"});
  for (const core::StclSweepPoint& point : points) {
    table.add_row({format_double(point.stcl, 0),
                   format_double(point.schedule_length, 1),
                   format_double(point.simulation_effort, 1),
                   std::to_string(point.sessions),
                   format_double(point.max_temperature, 2),
                   std::to_string(point.discarded_sessions)});
  }
  std::cout << "TL = " << tl << " C\n";
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
