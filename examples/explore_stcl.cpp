// Explore the STCL trade-off the paper exposes as a user knob
// (Section 5: "exploration of more efficient solutions at the expense of
// longer thermal simulation times through a user selectable parameter").
//
// For a fixed TL, sweeps STCL and prints schedule length, simulation
// effort and max temperature, so a test engineer can pick the knee.
//
//   ./explore_stcl [--tl 155] [--stcl-min 20] [--stcl-max 100] [--step 10] [--csv]
#include <iostream>

#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace thermo;

  double tl = 155.0;
  double stcl_min = 20.0, stcl_max = 100.0, step = 10.0;
  bool csv = false;
  CliParser cli("explore_stcl", "Sweep STCL and report the trade-off");
  cli.add_double("tl", "Temperature limit TL [deg C]", &tl);
  cli.add_double("stcl-min", "Smallest STCL", &stcl_min);
  cli.add_double("stcl-max", "Largest STCL", &stcl_max);
  cli.add_double("step", "STCL increment", &step);
  cli.add_flag("csv", "Emit CSV instead of an aligned table", &csv);
  try {
    if (!cli.parse(argc, argv)) return 0;
    if (step <= 0.0 || stcl_max < stcl_min) {
      throw InvalidArgument("need step > 0 and stcl-max >= stcl-min");
    }
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage();
    return 1;
  }

  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

  Table table({"STCL", "length [s]", "effort [s]", "sessions", "max temp [C]",
               "discards"});
  for (double stcl = stcl_min; stcl <= stcl_max + 1e-9; stcl += step) {
    core::ThermalSchedulerOptions options;
    options.temperature_limit = tl;
    options.stc_limit = stcl;
    options.model.stc_scale = soc::alpha_stc_scale();
    const core::ThermalAwareScheduler scheduler(options);
    const core::ScheduleResult result = scheduler.generate(soc, analyzer);
    table.add_row({format_double(stcl, 0),
                   format_double(result.schedule_length, 1),
                   format_double(result.simulation_effort, 1),
                   std::to_string(result.schedule.session_count()),
                   format_double(result.max_temperature, 2),
                   std::to_string(result.discarded_sessions)});
  }
  std::cout << "TL = " << tl << " C\n";
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
