// Emit a demo JSONL request batch for `thermosched serve` to stdout.
//
//   ./build/examples/make_requests --count 120 > requests.jsonl
//   ./build/apps/thermosched serve --in requests.jsonl --out results.jsonl
//
// The batch is fully determined by (--count, --seed) — the serve smoke
// test and CI use that to check the 1-vs-N-thread outputs are
// bit-identical. Request schema: docs/SERVE.md.
#include <iostream>

#include "scenario/demo.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace thermo;
  long long count = 120;
  long long seed = 20;
  CliParser cli("make_requests",
                "Generate a demo JSONL scenario batch for thermosched serve");
  cli.add_int("count", "Number of requests to emit", &count);
  cli.add_int("seed", "Generator seed (same seed = same batch)", &seed);
  try {
    if (!cli.parse(argc, argv)) return 0;
    THERMO_REQUIRE(count >= 1, "--count must be >= 1");
    THERMO_REQUIRE(seed >= 0, "--seed must be >= 0");
    for (const scenario::ScenarioRequest& request : scenario::demo_batch(
             static_cast<std::size_t>(count), static_cast<std::uint64_t>(seed))) {
      std::cout << scenario::to_json_line(request) << '\n';
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
