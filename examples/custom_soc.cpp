// Bring-your-own SoC: load a HotSpot .flp floorplan (or generate a
// synthetic one), attach test powers, and schedule it. Shows the
// library's extension points end to end.
//
//   ./custom_soc --flp my_chip.flp --density 1.2e6 --tl 150
//   ./custom_soc --synthetic 20 --seed 7 --tl 150
#include <iostream>

#include "core/thermal_scheduler.hpp"
#include "floorplan/flp_io.hpp"
#include "soc/synthetic.hpp"
#include "thermal/analyzer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main(int argc, char** argv) {
  std::string flp_path;
  long long synthetic_cores = 0;
  long long seed = 1;
  double density = 1.0e6;  // W/m^2 = 1 W/mm^2 uniform test power density
  double tl = 150.0;
  double stcl = 40.0;
  double stc_scale = 2.8e-3;

  CliParser cli("custom_soc", "Schedule a user-supplied or synthetic SoC");
  cli.add_string("flp", "HotSpot .flp floorplan file", &flp_path);
  cli.add_int("synthetic", "Generate a synthetic SoC with N cores instead",
              &synthetic_cores);
  cli.add_int("seed", "Random seed for --synthetic", &seed);
  cli.add_double("density", "Uniform test power density for --flp [W/m^2]",
                 &density);
  cli.add_double("tl", "Temperature limit [deg C]", &tl);
  cli.add_double("stcl", "Session thermal characteristic limit", &stcl);
  cli.add_double("stc-scale", "STC normalisation", &stc_scale);

  try {
    if (!cli.parse(argc, argv)) return 0;

    core::SocSpec soc;
    if (!flp_path.empty()) {
      soc.flp = floorplan::load_flp(flp_path);
      soc.name = soc.flp.name();
      soc.package = thermal::PackageParams{};
      for (std::size_t i = 0; i < soc.flp.size(); ++i) {
        soc.tests.push_back(
            core::CoreTest{density * soc.flp.block(i).area(), 1.0});
      }
      soc.validate();
    } else if (synthetic_cores > 0) {
      Rng rng(static_cast<std::uint64_t>(seed));
      soc::SyntheticOptions options;
      options.core_count = static_cast<std::size_t>(synthetic_cores);
      soc = soc::make_synthetic_soc(rng, options);
    } else {
      std::cerr << "need --flp <file> or --synthetic <cores>\n" << cli.usage();
      return 1;
    }

    thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

    core::ThermalSchedulerOptions options;
    options.temperature_limit = tl;
    options.stc_limit = stcl;
    options.model.stc_scale = stc_scale;
    // Unknown SoCs may contain cores that are individually too hot for
    // the chosen TL; raise the limit instead of refusing.
    options.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
    const core::ThermalAwareScheduler scheduler(options);
    const core::ScheduleResult result = scheduler.generate(soc, analyzer);

    std::cout << "SoC '" << soc.name << "': " << soc.core_count()
              << " cores\n";
    for (const std::string& note : result.notes) {
      std::cout << "note: " << note << '\n';
    }
    Table table({"session", "cores", "max temp [C]"});
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      table.add_row({"TS" + std::to_string(i + 1),
                     result.outcomes[i].session.to_string(soc),
                     format_double(result.outcomes[i].max_temperature, 2)});
    }
    table.print(std::cout);
    std::cout << "length " << result.schedule_length << " s, effort "
              << result.simulation_effort << " s, max "
              << result.max_temperature << " C (effective TL "
              << scheduler.effective_temperature_limit() << " C)\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
