// Quickstart: generate a thermal-safe test schedule for the bundled
// 15-core Alpha-like SoC and print it, together with the paper's two
// quality metrics (schedule length and simulation effort).
//
//   ./quickstart [--tl 155] [--stcl 50]
#include <iostream>

#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace thermo;

  double tl = 155.0;
  double stcl = 50.0;
  CliParser cli("quickstart",
                "Generate a thermal-safe test schedule (DATE'05 Algorithm 1)");
  cli.add_double("tl", "Maximum allowable core temperature TL [deg C]", &tl);
  cli.add_double("stcl", "Session thermal characteristic limit STCL", &stcl);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage();
    return 1;
  }

  // 1. The system under test: floorplan + package + per-core test set.
  const core::SocSpec soc = soc::alpha_soc();
  std::cout << "SoC: " << soc.name << " (" << soc.core_count()
            << " cores, die " << soc.flp.chip_width() * 1e3 << " x "
            << soc.flp.chip_height() * 1e3 << " mm)\n\n";

  // 2. The thermal oracle: RC-network simulator at block granularity.
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

  // 3. Algorithm 1, guided by the test session thermal model.
  core::ThermalSchedulerOptions options;
  options.temperature_limit = tl;
  options.stc_limit = stcl;
  options.model.stc_scale = soc::alpha_stc_scale();
  const core::ThermalAwareScheduler scheduler(options);
  const core::ScheduleResult result = scheduler.generate(soc, analyzer);

  // 4. Report.
  Table table({"session", "cores", "length [s]", "max temp [C]"});
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const core::SessionOutcome& outcome = result.outcomes[i];
    table.add_row({"TS" + std::to_string(i + 1),
                   outcome.session.to_string(soc),
                   format_double(outcome.length, 1),
                   format_double(outcome.max_temperature, 2)});
  }
  table.print(std::cout);
  std::cout << "\nschedule length    : " << result.schedule_length << " s\n"
            << "simulation effort  : " << result.simulation_effort << " s\n"
            << "max temperature    : " << result.max_temperature << " C (TL "
            << tl << " C)\n"
            << "discarded sessions : " << result.discarded_sessions << "\n";
  return 0;
}
