// Power-constrained vs thermal-aware scheduling, on the paper's own
// motivational example (Figure 1) and on the Alpha-like SoC.
//
// Demonstrates the paper's core claim: a chip-level power budget does
// not prevent local overheating, because power density - not power -
// creates hot spots; the thermal-aware scheduler avoids them with
// comparable concurrency.
//
//   ./power_vs_thermal [--power-limit 45] [--tl 155]
#include <iostream>

#include "core/power_scheduler.hpp"
#include "core/safety_checker.hpp"
#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "soc/fig1.hpp"
#include "thermal/analyzer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

namespace {

void fig1_demo() {
  std::cout << "=== Figure 1: same power, very different temperature ===\n";
  const core::SocSpec soc = soc::fig1_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

  const core::TestSession ts1 = soc::fig1_session_ts1(soc);
  const core::TestSession ts2 = soc::fig1_session_ts2(soc);

  Table table({"session", "cores", "total power [W]", "power density ratio",
               "max temp [C]"});
  const struct {
    const core::TestSession* session;
    const char* name;
  } rows[] = {{&ts1, "TS1"}, {&ts2, "TS2"}};
  for (const auto& row : rows) {
    double power = 0.0;
    for (std::size_t c : row.session->cores) power += soc.tests[c].power;
    const thermal::SessionSimulation sim = analyzer.simulate_session(
        row.session->power_map(soc), row.session->length(soc));
    const double density_ratio =
        soc.power_density(row.session->cores.front()) / soc.power_density(0);
    table.add_row({row.name, row.session->to_string(soc),
                   format_double(power, 0), format_double(density_ratio, 1),
                   format_double(sim.max_temperature, 1)});
  }
  table.print(std::cout);
  std::cout << "Both sessions respect the " << soc::kFig1PowerLimit
            << " W budget; only one of them is thermally safe.\n\n";
}

void alpha_comparison(double power_limit, double tl) {
  std::cout << "=== Alpha-15 SoC: schedulers head to head (TL = " << tl
            << " C) ===\n";
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  const core::SafetyChecker checker(tl);

  // Power-constrained baseline.
  core::PowerSchedulerOptions popt;
  popt.power_limit = power_limit;
  const core::PowerConstrainedScheduler power_sched(popt);
  const core::ScheduleResult pres = power_sched.generate(soc, &analyzer);
  const core::SafetyReport preport =
      checker.check(soc, pres.schedule, analyzer);

  // Thermal-aware scheduler.
  core::ThermalSchedulerOptions topt;
  topt.temperature_limit = tl;
  topt.stc_limit = 50.0;
  topt.model.stc_scale = soc::alpha_stc_scale();
  const core::ThermalAwareScheduler thermal_sched(topt);
  const core::ScheduleResult tres = thermal_sched.generate(soc, analyzer);
  const core::SafetyReport treport =
      checker.check(soc, tres.schedule, analyzer);

  Table table({"scheduler", "sessions", "length [s]", "max temp [C]",
               "thermal violations"});
  table.add_row({"power-constrained (" + format_double(power_limit, 0) + " W)",
                 std::to_string(pres.schedule.session_count()),
                 format_double(pres.schedule_length, 1),
                 format_double(preport.max_temperature, 1),
                 std::to_string(preport.violations.size())});
  table.add_row({"thermal-aware (Algorithm 1)",
                 std::to_string(tres.schedule.session_count()),
                 format_double(tres.schedule_length, 1),
                 format_double(treport.max_temperature, 1),
                 std::to_string(treport.violations.size())});
  table.print(std::cout);
  if (!preport.safe) {
    std::cout << "\npower-constrained violations:\n"
              << preport.to_string(soc) << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  double power_limit = 120.0;
  double tl = 155.0;
  CliParser cli("power_vs_thermal",
                "Compare power-constrained and thermal-aware scheduling");
  cli.add_double("power-limit", "Chip-level power budget [W]", &power_limit);
  cli.add_double("tl", "Temperature limit for the safety check [C]", &tl);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << cli.usage();
    return 1;
  }
  fig1_demo();
  alpha_comparison(power_limit, tl);
  return 0;
}
