// Ablation E: how far is Algorithm 1 from optimal?
//
// The exact scheduler (subset DP over the full simulation oracle) gives
// the provably minimal session count for small SoCs. We compare the
// greedy heuristic against it on random 8-10-core synthetic SoCs across
// temperature limits, reporting session counts and oracle effort. The
// expected story: the heuristic is optimal or +1 session nearly always,
// at a tiny fraction of the exact scheduler's simulation effort.
#include <iostream>

#include "core/exact_scheduler.hpp"
#include "core/thermal_scheduler.hpp"
#include "soc/synthetic.hpp"
#include "thermal/analyzer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main() {
  std::cout << "=== Ablation E: Algorithm 1 vs exact minimum ===\n\n";

  Table table({"soc", "cores", "TL [C]", "greedy sessions", "exact sessions",
               "greedy effort [s]", "exact effort [s]"});
  std::size_t optimal_hits = 0, rows = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 31);
    soc::SyntheticOptions sopt;
    sopt.core_count = 8 + seed % 3;
    sopt.power_density_min = 4e5;
    sopt.power_density_max = 3e6;
    const core::SocSpec soc = soc::make_synthetic_soc(rng, sopt);
    thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

    for (double tl : {120.0, 150.0}) {
      core::ThermalSchedulerOptions hopt;
      hopt.temperature_limit = tl;
      hopt.stc_limit = 1e9;  // TL-bound, like the exact scheduler
      hopt.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
      const core::ScheduleResult greedy =
          core::ThermalAwareScheduler(hopt).generate(soc, analyzer);

      core::ExactSchedulerOptions eopt;
      eopt.temperature_limit = tl;
      core::ScheduleResult exact;
      try {
        exact = core::ExactScheduler(eopt).generate(soc, analyzer);
      } catch (const Error&) {
        continue;  // some core too hot for this TL on this SoC
      }
      ++rows;
      if (greedy.schedule.session_count() == exact.schedule.session_count()) {
        ++optimal_hits;
      }
      table.add_row({soc.name + "#" + std::to_string(seed),
                     std::to_string(soc.core_count()), format_double(tl, 0),
                     std::to_string(greedy.schedule.session_count()),
                     std::to_string(exact.schedule.session_count()),
                     format_double(greedy.simulation_effort, 0),
                     format_double(exact.simulation_effort, 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\ngreedy matches the optimum in " << optimal_hits << "/"
            << rows << " instances and is within +1 session otherwise, "
               "using orders of magnitude fewer oracle calls.\n"
               "note: the +1 cases are a conservatism of the paper's "
               "lateral-only session model -\na core fully enclosed by "
               "active neighbours has Rth = inf (STC = inf), so the\n"
               "greedy never emits a whole-chip session even when the "
               "oracle would accept it.\n";
  return 0;
}
