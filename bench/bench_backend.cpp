// Dense-vs-sparse backend benchmark: the measurement behind
// SolverBackend::kAuto's node-count crossover (thermal/backend.hpp).
//
// For each synthetic grid floorplan size it times, on the SAME model:
//   * assembly           — sparse-first model build (Builder -> CSR);
//   * cold factor        — dense Cholesky of G vs sparse LDLᵗ of G;
//   * cached steady solve — one back-substitution per backend;
//   * cached BE step     — one backward-Euler step per backend;
//   * cold simulate      — cache invalidated, then a 50-step transient
//     session (factor + steps), per backend. This is the acceptance
//     metric: at the largest grid (>= 1000 nodes) the sparse backend
//     must win by >= 5x or the binary exits non-zero.
// and records the symbolic factor fill with and without the
// fill-reducing ordering (docs/SOLVERS.md "Ordering").
//
// A separate large-model section takes one 317x317 GridThermalModel —
// 100,489 cells + 10 package nodes, past the 100k-node mark where the
// dense backend is physically infeasible (~80 GB for the factor) — and
// measures sparse assembly, the cold fill-ordered factorization, a
// cached solve, and the process peak RSS.
//
// Exit-code gates (CI + smoke.bench_backend):
//   * dense/sparse agreement within 1e-9 at every benchmarked size;
//   * >= 5x sparse cold-simulate win at the largest (>= 1000 node) grid;
//   * ordered fill strictly below natural fill at the largest grid and
//     the 100k model (the ordering earns its complexity);
//   * the 100k cold factor + solve completes with peak RSS below
//     kMaxPeakRssMb — far under what the dense mirror alone would need.
//
// Self-timed (std::chrono), no Google Benchmark dependency, always
// built; emits the machine-readable BENCH_backend.json
// (schema thermo.bench_backend.v2) consumed by CI and registered as the
// smoke.bench_backend CTest.
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "floorplan/generator.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/ode.hpp"
#include "linalg/ordering.hpp"
#include "linalg/sparse_cholesky.hpp"
#include "thermal/backend.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/rc_model.hpp"
#include "thermal/solver_cache.hpp"
#include "thermal/steady_state.hpp"
#include "thermal/transient.hpp"

using namespace thermo;

namespace {

std::vector<double> grid_power(std::size_t blocks) {
  std::vector<double> power(blocks, 0.0);
  for (std::size_t i = 0; i < blocks; i += 3) power[i] = 5.0;
  return power;
}

/// Seconds per call of `fn`, measured over enough repetitions to
/// accumulate `min_time` seconds of work (at most `max_reps`).
template <typename Fn>
double seconds_per_call(Fn&& fn, double min_time = 0.02,
                        std::size_t max_reps = 200) {
  using clock = std::chrono::steady_clock;
  std::size_t reps = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  while (reps < max_reps && elapsed < min_time) {
    fn();
    ++reps;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  }
  return elapsed / static_cast<double>(reps);
}

/// Process peak resident set in MB (ru_maxrss is KiB on Linux).
double peak_rss_mb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double max_rel_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale =
        std::max(1e-30, std::max(std::fabs(a[i]), std::fabs(b[i])));
    worst = std::max(worst, std::fabs(a[i] - b[i]) / scale);
  }
  return worst;
}

struct BackendPoint {
  std::size_t side = 0, blocks = 0, nodes = 0, factor_nnz = 0;
  std::size_t fill_natural = 0, fill_ordered = 0;
  double assembly_s = 0.0;
  double dense_factor_s = 0.0, sparse_factor_s = 0.0;
  double dense_solve_s = 0.0, sparse_solve_s = 0.0;
  double dense_step_s = 0.0, sparse_step_s = 0.0;
  double dense_cold_simulate_s = 0.0, sparse_cold_simulate_s = 0.0;
  double steady_max_rel_diff = 0.0, transient_max_rel_diff = 0.0;

  double factor_speedup() const {
    return sparse_factor_s > 0.0 ? dense_factor_s / sparse_factor_s : 0.0;
  }
  double solve_speedup() const {
    return sparse_solve_s > 0.0 ? dense_solve_s / sparse_solve_s : 0.0;
  }
  double step_speedup() const {
    return sparse_step_s > 0.0 ? dense_step_s / sparse_step_s : 0.0;
  }
  double cold_simulate_speedup() const {
    return sparse_cold_simulate_s > 0.0
               ? dense_cold_simulate_s / sparse_cold_simulate_s
               : 0.0;
  }
};

/// The 100k-node sparse-only measurement (no dense counterpart exists
/// at this size — that is the point).
struct LargeModelPoint {
  std::size_t grid_side = 0, nodes = 0;
  std::size_t fill_natural = 0, fill_ordered = 0;
  double assembly_s = 0.0;     ///< GridThermalModel build (Builder -> CSR)
  double cold_factor_s = 0.0;  ///< ordering + symbolic + numeric LDLᵗ
  double solve_s = 0.0;        ///< one cached back-substitution
  double rss_mb = 0.0;         ///< process peak RSS after the factor
};

LargeModelPoint measure_large(std::size_t grid_side) {
  LargeModelPoint point;
  point.grid_side = grid_side;

  const floorplan::Floorplan die =
      floorplan::make_grid_floorplan(4, 4, 0.016, 0.016);
  using clock = std::chrono::steady_clock;
  auto t0 = clock::now();
  const thermal::GridThermalModel model(
      die, thermal::PackageParams{},
      thermal::GridOptions{grid_side, grid_side});
  point.assembly_s = std::chrono::duration<double>(clock::now() - t0).count();
  point.nodes = model.node_count();

  const linalg::SparseMatrix& g = model.conductance();
  point.fill_natural = linalg::symbolic_factor_nonzeros(g);

  t0 = clock::now();
  const linalg::SparseCholeskyFactor factor(g);  // kAuto -> min-degree here
  point.cold_factor_s = std::chrono::duration<double>(clock::now() - t0).count();
  point.fill_ordered = factor.factor_nonzeros();

  const auto power = grid_power(die.size());
  const thermal::GridSteadyResult reference =
      model.solve(power, thermal::SolverBackend::kSparse);
  point.solve_s = seconds_per_call(
      [&] {
        volatile double sink =
            model.solve(power, thermal::SolverBackend::kSparse)
                .cell_temperature[0];
        (void)sink;
      },
      0.02, 5);
  volatile double sink = reference.cell_temperature[0];
  (void)sink;
  thermal::ThermalSolverCache::instance().invalidate(model);
  point.rss_mb = peak_rss_mb();
  return point;
}

BackendPoint measure(std::size_t side) {
  const floorplan::Floorplan fp =
      floorplan::make_grid_floorplan(side, side, 0.016, 0.016);
  const thermal::RCModel model(fp, thermal::PackageParams{});
  const auto block_power = grid_power(model.block_count());
  const std::vector<double> power = model.expand_power(block_power);
  const auto initial = thermal::ambient_state(model);
  constexpr double kDt = 1e-3;
  constexpr double kDuration = 0.05;  // 50 backward-Euler steps

  BackendPoint point;
  point.side = side;
  point.blocks = model.block_count();
  point.nodes = model.node_count();

  // Sparse-first assembly: floorplan -> stamped Builder -> CSR.
  point.assembly_s = seconds_per_call([&] {
    const thermal::RCModel assembled(fp, thermal::PackageParams{});
    volatile auto sink = assembled.conductance_sparse().nonzeros();
    (void)sink;
  });

  // Symbolic fill with and without the fill-reducing ordering.
  point.fill_natural =
      linalg::symbolic_factor_nonzeros(model.conductance_sparse());
  point.fill_ordered = linalg::symbolic_factor_nonzeros(
      model.conductance_sparse(),
      linalg::min_degree_ordering(model.conductance_sparse()));

  // Cold factor: what the first solve on a fresh model pays.
  point.dense_factor_s = seconds_per_call([&] {
    const linalg::CholeskyFactor factor(model.conductance());
    volatile double sink = factor.l()(0, 0);
    (void)sink;
  });
  point.sparse_factor_s = seconds_per_call([&] {
    const linalg::SparseCholeskyFactor factor(model.conductance_sparse());
    volatile auto sink = factor.factor_nonzeros();
    (void)sink;
  });

  // Cached steady solve: one back-substitution per backend.
  const linalg::CholeskyFactor dense_factor(model.conductance());
  const linalg::SparseCholeskyFactor sparse_factor(model.conductance_sparse());
  point.factor_nnz = sparse_factor.factor_nonzeros();
  point.dense_solve_s = seconds_per_call([&] {
    volatile double sink = dense_factor.solve(power)[0];
    (void)sink;
  });
  point.sparse_solve_s = seconds_per_call([&] {
    volatile double sink = sparse_factor.solve(power)[0];
    (void)sink;
  });
  point.steady_max_rel_diff =
      max_rel_diff(dense_factor.solve(power), sparse_factor.solve(power));

  // Cached backward-Euler step.
  const linalg::LinearImplicitStepper dense_stepper(model.conductance(),
                                                    model.capacitance(), kDt);
  const linalg::SparseImplicitStepper sparse_stepper(
      model.conductance_sparse(), model.capacitance(), kDt);
  std::vector<double> rise(model.node_count(), 0.0);
  point.dense_step_s = seconds_per_call([&] {
    volatile double sink = dense_stepper.step(rise, power)[0];
    (void)sink;
  });
  point.sparse_step_s = seconds_per_call([&] {
    volatile double sink = sparse_stepper.step(rise, power)[0];
    (void)sink;
  });

  // Cold factor + simulate through the public entry point: the cost a
  // scenario pays the first time it touches a model at this size.
  thermal::TransientOptions dense_topt;
  dense_topt.dt = kDt;
  dense_topt.backend = thermal::SolverBackend::kDense;
  thermal::TransientOptions sparse_topt;
  sparse_topt.dt = kDt;
  sparse_topt.backend = thermal::SolverBackend::kSparse;
  thermal::ThermalSolverCache& cache = thermal::ThermalSolverCache::instance();
  point.dense_cold_simulate_s = seconds_per_call(
      [&] {
        cache.invalidate(model);
        thermal::simulate_transient(model, block_power, kDuration, initial,
                                    dense_topt);
      },
      0.02, 20);
  point.sparse_cold_simulate_s = seconds_per_call(
      [&] {
        cache.invalidate(model);
        thermal::simulate_transient(model, block_power, kDuration, initial,
                                    sparse_topt);
      },
      0.02, 20);

  cache.invalidate(model);
  const thermal::TransientResult tr_dense = thermal::simulate_transient(
      model, block_power, kDuration, initial, dense_topt);
  const thermal::TransientResult tr_sparse = thermal::simulate_transient(
      model, block_power, kDuration, initial, sparse_topt);
  point.transient_max_rel_diff =
      std::max(max_rel_diff(tr_dense.final_temperature, tr_sparse.final_temperature),
               max_rel_diff(tr_dense.peak_temperature, tr_sparse.peak_temperature));
  cache.invalidate(model);
  return point;
}

void write_json(const std::string& path, const std::vector<BackendPoint>& points,
                const LargeModelPoint& large, std::size_t measured_crossover) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
  out.precision(6);
  out << "{\n";
  out << "  \"schema\": \"thermo.bench_backend.v2\",\n";
  out << "  \"bench\": \"bench_backend\",\n";
  out << "  \"mode\": \"quick\",\n";
  out << "  \"auto_crossover_nodes\": " << thermal::kSparseBackendCrossover
      << ",\n";
  out << "  \"measured_crossover_nodes\": " << measured_crossover << ",\n";
  out << "  \"peak_rss_mb\": " << peak_rss_mb() << ",\n";
  out << "  \"large_model\": {\"grid_side\": " << large.grid_side
      << ", \"nodes\": " << large.nodes
      << ", \"fill_natural\": " << large.fill_natural
      << ", \"fill_ordered\": " << large.fill_ordered
      << ",\n    \"assembly_s\": " << large.assembly_s
      << ", \"cold_factor_s\": " << large.cold_factor_s
      << ", \"solve_s\": " << large.solve_s << ", \"rss_mb\": " << large.rss_mb
      << "},\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const BackendPoint& p = points[i];
    out << "    {\"side\": " << p.side << ", \"blocks\": " << p.blocks
        << ", \"nodes\": " << p.nodes << ", \"factor_nnz\": " << p.factor_nnz
        << ",\n     \"fill_natural\": " << p.fill_natural
        << ", \"fill_ordered\": " << p.fill_ordered
        << ", \"assembly_s\": " << p.assembly_s
        << ",\n     \"dense_factor_s\": " << p.dense_factor_s
        << ", \"sparse_factor_s\": " << p.sparse_factor_s
        << ", \"factor_speedup\": " << p.factor_speedup()
        << ",\n     \"dense_solve_s\": " << p.dense_solve_s
        << ", \"sparse_solve_s\": " << p.sparse_solve_s
        << ", \"solve_speedup\": " << p.solve_speedup()
        << ",\n     \"dense_step_s\": " << p.dense_step_s
        << ", \"sparse_step_s\": " << p.sparse_step_s
        << ", \"step_speedup\": " << p.step_speedup()
        << ",\n     \"dense_cold_simulate_s\": " << p.dense_cold_simulate_s
        << ", \"sparse_cold_simulate_s\": " << p.sparse_cold_simulate_s
        << ", \"cold_simulate_speedup\": " << p.cold_simulate_speedup()
        << ",\n     \"steady_max_rel_diff\": " << p.steady_max_rel_diff
        << ", \"transient_max_rel_diff\": " << p.transient_max_rel_diff << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_backend.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::cerr << "bench_backend: unknown argument '" << arg
                << "' (usage: bench_backend [--json PATH])\n";
      return 2;
    }
  }

  try {
    std::cout << "bench_backend (dense vs sparse thermal backends)\n";
    std::vector<BackendPoint> points;
    for (std::size_t side : {8u, 16u, 24u, 32u}) {  // 74..1034 nodes
      points.push_back(measure(side));
      const BackendPoint& p = points.back();
      std::cout << "grid " << p.side << "x" << p.side << " (" << p.nodes
                << " nodes, fill " << p.fill_natural << " -> "
                << p.fill_ordered << "): factor " << p.factor_speedup()
                << "x, solve " << p.solve_speedup() << "x, step "
                << p.step_speedup() << "x, cold simulate "
                << p.cold_simulate_speedup() << "x, rel diff "
                << std::max(p.steady_max_rel_diff, p.transient_max_rel_diff)
                << "\n";
    }

    // The 100k-node section: 317x317 cells + 10 package nodes.
    const LargeModelPoint large = measure_large(317);
    std::cout << "large model " << large.grid_side << "x" << large.grid_side
              << " (" << large.nodes << " nodes): assembly "
              << large.assembly_s << " s, cold ordered factor "
              << large.cold_factor_s << " s, solve " << large.solve_s
              << " s, fill " << large.fill_natural << " -> "
              << large.fill_ordered << ", peak RSS " << large.rss_mb
              << " MB\n";

    // Smallest benchmarked size at which the sparse backend wins the
    // cold-factor-plus-simulate metric — what kAuto's constant encodes.
    std::size_t measured_crossover = 0;
    for (const BackendPoint& p : points) {
      if (p.cold_simulate_speedup() > 1.0) {
        measured_crossover = p.nodes;
        break;
      }
    }
    write_json(json_path, points, large, measured_crossover);
    std::cout << "wrote " << json_path << "\n";

    // Hard gates (CI + smoke.bench_backend): agreement within the
    // documented tolerance at every size, and >= 5x sparse win on cold
    // factor + simulate at the largest (>= 1000 node) grid.
    for (const BackendPoint& p : points) {
      if (p.steady_max_rel_diff > 1e-9 || p.transient_max_rel_diff > 1e-9) {
        std::cerr << "bench_backend: backends disagree at " << p.nodes
                  << " nodes (steady " << p.steady_max_rel_diff
                  << ", transient " << p.transient_max_rel_diff << ")\n";
        return 1;
      }
    }
    const BackendPoint& largest = points.back();
    if (largest.nodes < 1000) {
      std::cerr << "bench_backend: largest grid has only " << largest.nodes
                << " nodes (< 1000)\n";
      return 1;
    }
    if (largest.cold_simulate_speedup() < 5.0) {
      std::cerr << "bench_backend: sparse cold simulate only "
                << largest.cold_simulate_speedup() << "x at " << largest.nodes
                << " nodes (need >= 5x)\n";
      return 1;
    }
    // Ordering gates: the fill-reducing permutation must strictly beat
    // natural order where it is active (kOrderingAutoMinNodes and up).
    if (largest.fill_ordered >= largest.fill_natural) {
      std::cerr << "bench_backend: ordered fill " << largest.fill_ordered
                << " not below natural fill " << largest.fill_natural
                << " at " << largest.nodes << " nodes\n";
      return 1;
    }
    if (large.fill_ordered >= large.fill_natural) {
      std::cerr << "bench_backend: ordered fill " << large.fill_ordered
                << " not below natural fill " << large.fill_natural
                << " at the " << large.nodes << "-node model\n";
      return 1;
    }
    // Memory gate: the 100k factor must complete far below what the
    // dense backend would need (~80 GB for the factor alone).
    constexpr double kMaxPeakRssMb = 4096.0;
    if (large.rss_mb <= 0.0 || large.rss_mb > kMaxPeakRssMb) {
      std::cerr << "bench_backend: peak RSS " << large.rss_mb
                << " MB outside (0, " << kMaxPeakRssMb << "] at "
                << large.nodes << " nodes\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_backend: " << e.what() << "\n";
    return 1;
  }
}
