// Ablation B: how good a guide is the session thermal model?
//
// Three questions:
//  1. *Fidelity*: does the core thermal characteristic TC = P * Rth
//     rank cores the way the full RC simulation ranks their solo
//     temperature rises? (Spearman rank correlation; the model only has
//     to order candidates, not predict kelvins.)
//  2. *Vertical-path extension*: the paper's model uses lateral paths
//     only. Adding the die->package vertical resistance in parallel
//     (include_vertical_path) changes Rth mostly for large cores - does
//     it help or hurt schedule generation?
//  3. *Speed*: the entire point of the model is avoiding simulations.
//     Compare the cost of one STC evaluation against one 1 s transient
//     session simulation.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <numeric>
#include <vector>

#include "core/session_model.hpp"
#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

namespace {

std::vector<double> ranks(const std::vector<double>& values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> rank(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<double>(i);
  }
  return rank;
}

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  const double n = static_cast<double>(a.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

}  // namespace

int main() {
  std::cout << "=== Ablation B: session thermal model fidelity ===\n\n";
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  const std::size_t n = soc.core_count();

  // 1. TC vs simulated solo temperature rise.
  core::SessionModelOptions lateral_only;
  const core::SessionThermalModel model(soc.flp, soc.package, lateral_only);
  std::vector<double> tc(n), solo_rise(n);
  const std::vector<bool> none(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    tc[i] = model.thermal_characteristic(none, i, soc.tests[i].power);
    std::vector<double> power(n, 0.0);
    power[i] = soc.tests[i].power;
    const thermal::SessionSimulation sim = analyzer.simulate_session(power, 1.0);
    solo_rise[i] = sim.peak_temperature[i] - soc.package.ambient;
  }
  Table fidelity({"core", "TC = P*Rth [K]", "simulated solo rise [K]"});
  for (std::size_t i = 0; i < n; ++i) {
    fidelity.add_row({soc.flp.block(i).name, format_double(tc[i], 1),
                      format_double(solo_rise[i], 1)});
  }
  fidelity.print(std::cout);
  std::cout << "Spearman rank correlation (TC vs solo rise): "
            << format_double(spearman(tc, solo_rise), 3) << "\n\n";

  // 2. Lateral-only vs vertical-path-extended model as scheduler guide.
  Table guide({"model", "TL [C]", "STCL", "length [s]", "effort [s]",
               "discards"});
  for (bool vertical : {false, true}) {
    for (double tl : {145.0, 165.0}) {
      core::ThermalSchedulerOptions options;
      options.temperature_limit = tl;
      options.stc_limit = 50.0;
      options.model.include_vertical_path = vertical;
      options.model.stc_scale = soc::alpha_stc_scale();
      const core::ThermalAwareScheduler scheduler(options);
      const core::ScheduleResult result = scheduler.generate(soc, analyzer);
      guide.add_row({vertical ? "lateral+vertical" : "lateral-only (paper)",
                     format_double(tl, 0), "50",
                     format_double(result.schedule_length, 0),
                     format_double(result.simulation_effort, 0),
                     std::to_string(result.discarded_sessions)});
    }
  }
  guide.print(std::cout);

  // 3. Cost: STC evaluation vs transient session simulation.
  using clock = std::chrono::steady_clock;
  const std::vector<double> power = soc.test_powers();
  const std::vector<double> weight(n, 1.0);
  std::vector<bool> active(n, false);
  for (std::size_t i = 0; i < n; i += 2) active[i] = true;

  constexpr int kStcReps = 100000;
  const auto t0 = clock::now();
  double sink = 0.0;
  for (int rep = 0; rep < kStcReps; ++rep) {
    sink += model.session_characteristic(active, power, weight);
  }
  const auto t1 = clock::now();
  constexpr int kSimReps = 20;
  for (int rep = 0; rep < kSimReps; ++rep) {
    analyzer.simulate_session(power, 1.0);
  }
  const auto t2 = clock::now();

  const double stc_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kStcReps;
  const double sim_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / kSimReps;
  std::cout << "\nSTC evaluation: " << format_double(stc_us, 2)
            << " us;  1 s transient session simulation: "
            << format_double(sim_us, 1) << " us;  ratio "
            << format_double(sim_us / stc_us, 0) << "x (checksum "
            << format_double(sink, 0) << ")\n";
  return 0;
}
