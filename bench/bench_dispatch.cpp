// Dispatch-layer record: does cost-aware placement actually cut the
// makespan of a skewed batch, and does the result memo actually dedup?
//
//   ./build/bench/bench_dispatch                        # table
//   ./build/bench/bench_dispatch --json BENCH_dispatch.json
//
// The batch is the ROADMAP skew scenario: 60 small Alpha requests
// (distinct power corners, transient oracle) plus ONE 1034-thermal-node
// synthetic sparse request — the whale — placed LAST in the input.
// Under fifo the whale starts only after the small fry drain, so the
// batch makespan is roughly smalls/threads + whale; under ljf the whale
// starts first and the smalls backfill the other workers. Each policy
// runs `--reps` times on `--threads` workers (dedup off, fresh runner,
// min makespan wins) and every run's output must be byte-identical to a
// 1-thread reference — placement may never change the bytes.
//
// The JSON record (schema "thermo.bench_dispatch.v2") is CI-gated:
//   * ljf_makespan_s < fifo_makespan_s when gate_enforced (>= 4 worker
//     threads AND >= 4 hardware threads — on fewer cores there is no
//     parallelism for placement to exploit, so the gate is recorded but
//     not enforced);
//   * memo_hit_rate == 1.0: serving the identical batch twice through
//     one shared memo must answer every second-pass request from it;
//   * cost_rank_ok: the CostModel must rank the whale as the most
//     expensive request AND the measured per-request wall times must
//     agree — the calibration check that keeps ljf meaningful;
//   * calibration.improved: on a generated stream, a calibrator trained
//     on one pass must estimate the next pass strictly better (median
//     relative error, scale-free) than the hand-tuned constants;
//   * slo.edf_ok: on a deadline batch (heavy deadline-free requests
//     arriving first, light 100 ms-deadline requests behind them), edf
//     placement must miss no more deadlines than fifo;
//   * deterministic also covers the edf/priority/srpt policies and
//     calibrate on/off — placement inputs may never change the bytes.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dispatch/calibrator.hpp"
#include "dispatch/result_memo.hpp"
#include "gen/generator.hpp"
#include "scenario/cost.hpp"
#include "scenario/request.hpp"
#include "scenario/serve.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace thermo;

std::string skewed_batch(std::size_t small_count) {
  std::string input;
  for (std::size_t i = 0; i < small_count; ++i) {
    scenario::ScenarioRequest small;
    small.id = "small-" + std::to_string(i);
    // Distinct corners so the memo cannot collapse the batch.
    small.soc.power_scale = 1.0 + 0.001 * static_cast<double>(i);
    small.stcl.min = small.stcl.max = 50.0;
    input += scenario::to_json_line(small) + "\n";
  }
  scenario::ScenarioRequest whale;
  whale.id = "whale";
  whale.soc.kind = scenario::SocKind::kSynthetic;
  whale.soc.synthetic.seed = 7;
  whale.soc.synthetic.cores = 1024;  // 1034 thermal nodes
  whale.soc.synthetic.test_length_min = 0.02;
  whale.soc.synthetic.test_length_max = 0.02;
  whale.tl = 400.0;
  whale.stcl.min = 100.0;
  whale.stcl.max = 120.0;
  whale.stcl.step = 10.0;
  whale.solver.transient = false;
  whale.solver.backend = thermal::SolverBackend::kSparse;
  whale.solver.backend_explicit = true;
  input += scenario::to_json_line(whale) + "\n";  // deliberately LAST
  return input;
}

/// The SLO batch: `heavy_count` deadline-free 246-core synthetic steady
/// requests arrive FIRST, then `light_count` Alpha requests that each
/// demand completion within 100 ms of the execution-window start. Under
/// fifo every worker grabs a heavy request before any light one starts;
/// under edf the deadlined lights (deadline 0.1 < +inf) all start
/// first. The records are identical either way — only the miss count
/// moves, which is exactly what the slo gate scores.
std::string slo_batch(std::size_t heavy_count, std::size_t light_count) {
  std::string input;
  for (std::size_t i = 0; i < heavy_count; ++i) {
    scenario::ScenarioRequest heavy;
    heavy.id = "heavy-" + std::to_string(i);
    heavy.soc.kind = scenario::SocKind::kSynthetic;
    heavy.soc.synthetic.seed = 3;
    heavy.soc.synthetic.cores = 246;  // 256 nodes: the first sparse rung
    heavy.soc.synthetic.test_length_min = 0.05;
    heavy.soc.synthetic.test_length_max = 0.05;
    heavy.soc.power_scale = 1.0 + 0.001 * static_cast<double>(i);
    heavy.tl = 400.0;
    heavy.stcl.min = heavy.stcl.max = 100.0;
    heavy.solver.transient = false;
    input += scenario::to_json_line(heavy) + "\n";
  }
  for (std::size_t i = 0; i < light_count; ++i) {
    scenario::ScenarioRequest light;
    light.id = "light-" + std::to_string(i);
    light.soc.power_scale = 1.0 + 0.001 * static_cast<double>(i);
    light.stcl.min = light.stcl.max = 50.0;
    light.deadline_s = 0.1;
    input += scenario::to_json_line(light) + "\n";
  }
  return input;
}

struct Run {
  std::string output;
  scenario::ServeSummary summary;
};

Run run_batch(const std::string& requests, const scenario::ServeOptions& options,
              scenario::ScenarioRunner* shared_runner = nullptr) {
  std::istringstream in(requests);
  std::ostringstream out;
  scenario::ScenarioRunner local_runner;  // cold model cache per run
  scenario::ScenarioRunner& runner =
      shared_runner != nullptr ? *shared_runner : local_runner;
  const auto summary = scenario::serve_stream(in, out, runner, options);
  return Run{out.str(), summary};
}

}  // namespace

int main(int argc, char** argv) {
  long long threads = 4;
  long long reps = 2;
  long long small_count = 60;
  std::string json_path;
  CliParser cli("bench_dispatch",
                "Makespan + memoization record for the dispatch engine "
                "(skewed 1x1034-node + N-small serve batch)");
  cli.add_int("threads", "Worker threads for the policy runs", &threads);
  cli.add_int("reps", "Timed repetitions per policy (min wins)", &reps);
  cli.add_int("smalls", "Small Alpha requests in the batch", &small_count);
  cli.add_string("json", "Write BENCH_dispatch.json-style record here",
                 &json_path);
  try {
    if (!cli.parse(argc, argv)) return 0;
    THERMO_REQUIRE(threads >= 1, "--threads must be >= 1");
    THERMO_REQUIRE(reps >= 1, "--reps must be >= 1");
    THERMO_REQUIRE(small_count >= 4, "--smalls must be >= 4");

    const std::string requests =
        skewed_batch(static_cast<std::size_t>(small_count));
    const std::size_t request_count =
        static_cast<std::size_t>(small_count) + 1;

    // 1-thread fifo reference: the bytes every other configuration must
    // reproduce, and the serial per-request timing baseline.
    scenario::ServeOptions reference_options;
    reference_options.threads = 1;
    reference_options.dedup = false;
    const Run reference = run_batch(requests, reference_options);
    THERMO_REQUIRE(reference.summary.failed == 0,
                   "reference run had failing requests");

    // Policy comparison: dedup off (isolates placement), fresh runner
    // per run (same cold-cache work for both policies), min over reps.
    // fifo/ljf are the timed pair; edf/priority/srpt run once each with
    // a calibrator attached, covering the full policy x calibration
    // byte-identity claim in the same sweep.
    bool deterministic = true;
    double makespans[2] = {0.0, 0.0};
    for (const dispatch::SchedulePolicy policy :
         {dispatch::SchedulePolicy::kFifo, dispatch::SchedulePolicy::kLjf,
          dispatch::SchedulePolicy::kEdf, dispatch::SchedulePolicy::kPriority,
          dispatch::SchedulePolicy::kSrpt}) {
      const bool timed = policy == dispatch::SchedulePolicy::kFifo ||
                         policy == dispatch::SchedulePolicy::kLjf;
      const long long policy_reps = timed ? reps : 1;
      double best = 0.0;
      for (long long rep = 0; rep < policy_reps; ++rep) {
        scenario::ServeOptions options;
        options.threads = static_cast<std::size_t>(threads);
        options.policy = policy;
        options.dedup = false;
        dispatch::CostCalibrator calibrator;
        if (!timed) options.calibrator = &calibrator;
        const Run run = run_batch(requests, options);
        deterministic = deterministic && run.output == reference.output;
        if (rep == 0 || run.summary.makespan_seconds < best) {
          best = run.summary.makespan_seconds;
        }
      }
      if (timed) {
        makespans[policy == dispatch::SchedulePolicy::kLjf ? 1 : 0] = best;
      }
    }
    const double fifo_makespan = makespans[0];
    const double ljf_makespan = makespans[1];
    const double speedup =
        ljf_makespan > 0.0 ? fifo_makespan / ljf_makespan : 0.0;

    // Cost-model validation against the serial reference timings: the
    // whale (input-last) must be both the estimated AND the measured
    // most-expensive request, and its measured skew should be large —
    // that is the whole premise of ljf placement.
    const auto& timings = reference.summary.request_timings;
    const std::size_t whale_index = timings.size() - 1;
    bool cost_rank_ok = true;
    std::vector<double> small_walls;
    for (std::size_t i = 0; i < timings.size(); ++i) {
      if (i == whale_index) continue;
      cost_rank_ok = cost_rank_ok &&
                     timings[whale_index].cost > timings[i].cost &&
                     timings[whale_index].wall_seconds > timings[i].wall_seconds;
      small_walls.push_back(timings[i].wall_seconds);
    }
    std::sort(small_walls.begin(), small_walls.end());
    const double small_median = small_walls[small_walls.size() / 2];
    const double measured_ratio =
        small_median > 0.0 ? timings[whale_index].wall_seconds / small_median
                           : 0.0;

    // Memoization: the identical batch served twice through one shared
    // memo — the second pass must answer EVERY request from it.
    dispatch::ResultMemo memo;
    scenario::ScenarioRunner memo_runner;
    scenario::ServeOptions memo_options;
    memo_options.threads = static_cast<std::size_t>(threads);
    memo_options.memo = &memo;
    const Run memo_first = run_batch(requests, memo_options, &memo_runner);
    const Run memo_second = run_batch(requests, memo_options, &memo_runner);
    deterministic = deterministic && memo_first.output == reference.output &&
                    memo_second.output == reference.output;
    const double memo_hit_rate =
        static_cast<double>(memo_second.summary.memo_hits) /
        static_cast<double>(request_count);

    // Calibration: a mixed generated stream served three times at one
    // thread through one warm runner — a warm-up pass (model builds must
    // not pollute the training measurements), a training pass that
    // folds its (features, wall) pairs into the calibrator, and an
    // evaluation pass whose summary scores the hand-tuned constants
    // against the post-pass fit on identical work. The fit must win.
    gen::GenConfig calib_config;
    calib_config.seed = 11;
    calib_config.count = 48;  // > CostCalibrator::kMinSamples
    calib_config.zipf_skew = 0.7;
    const gen::GeneratedStream calib_stream = gen::generate_stream(calib_config);
    std::string calib_requests;
    for (const std::string& line : calib_stream.lines) {
      calib_requests += line + "\n";
    }
    scenario::ScenarioRunner calib_runner;
    scenario::ServeOptions warmup_options;
    warmup_options.threads = 1;
    warmup_options.dedup = false;
    const Run calib_warmup = run_batch(calib_requests, warmup_options,
                                       &calib_runner);
    THERMO_REQUIRE(calib_warmup.summary.failed == 0,
                   "calibration stream had failing requests");
    dispatch::CostCalibrator calibrator;
    scenario::ServeOptions calib_options = warmup_options;
    calib_options.calibrator = &calibrator;
    const Run calib_train = run_batch(calib_requests, calib_options,
                                      &calib_runner);
    const Run calib_eval = run_batch(calib_requests, calib_options,
                                     &calib_runner);
    deterministic = deterministic &&
                    calib_train.output == calib_warmup.output &&
                    calib_eval.output == calib_warmup.output;
    THERMO_REQUIRE(calib_eval.summary.calibration_active,
                   "calibrator not ready after the training pass");
    const double fixed_error = calib_eval.summary.fixed_error;
    const double calibrated_error = calib_eval.summary.calibrated_error;
    const bool calibration_improved = calibrated_error < fixed_error;

    // SLO: the deadline batch under fifo vs edf at --threads. The gate
    // is tie-tolerant (<=): a machine fast enough that even fifo meets
    // every 100 ms deadline proves nothing against edf.
    const std::string slo_requests = slo_batch(6, 12);
    std::size_t slo_missed[2] = {0, 0};
    std::size_t slo_deadline_requests = 0;
    std::string slo_reference;
    for (const dispatch::SchedulePolicy policy :
         {dispatch::SchedulePolicy::kFifo, dispatch::SchedulePolicy::kEdf}) {
      scenario::ServeOptions options;
      options.threads = static_cast<std::size_t>(threads);
      options.policy = policy;
      options.dedup = false;
      const Run run = run_batch(slo_requests, options);
      THERMO_REQUIRE(run.summary.failed == 0,
                     "slo batch had failing requests");
      if (policy == dispatch::SchedulePolicy::kFifo) {
        slo_reference = run.output;
        slo_deadline_requests = run.summary.deadline_requests;
      } else {
        deterministic = deterministic && run.output == slo_reference;
      }
      slo_missed[policy == dispatch::SchedulePolicy::kEdf ? 1 : 0] =
          run.summary.deadline_missed;
    }
    const bool edf_ok = slo_missed[1] <= slo_missed[0];

    const std::size_t hardware =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const bool gate_enforced =
        threads >= 4 && hardware >= 4;  // no parallelism, no placement win
    const bool ljf_wins = ljf_makespan < fifo_makespan;

    std::cout << "dispatch batch: " << request_count << " requests ("
              << small_count << " small + 1 whale, whale last), "
              << threads << " threads, " << reps << " reps\n"
              << "  fifo makespan: " << format_double(fifo_makespan, 3)
              << " s\n"
              << "  ljf  makespan: " << format_double(ljf_makespan, 3)
              << " s (" << format_double(speedup, 2) << "x)\n"
              << "  whale wall   : "
              << format_double(timings[whale_index].wall_seconds, 3)
              << " s (" << format_double(measured_ratio, 1)
              << "x the median small; cost model ranks it "
              << (cost_rank_ok ? "first" : "WRONG") << ")\n"
              << "  memo 2nd pass: " << memo_second.summary.memo_hits << "/"
              << request_count << " hits ("
              << format_double(memo_hit_rate * 100.0, 1) << "%)\n"
              << "  calibration  : median rel error "
              << format_double(fixed_error, 3) << " fixed -> "
              << format_double(calibrated_error, 3) << " fitted ("
              << calibrator.samples() << " samples, "
              << (calibration_improved ? "improved" : "NOT IMPROVED") << ")\n"
              << "  slo deadlines: fifo missed " << slo_missed[0] << "/"
              << slo_deadline_requests << ", edf missed " << slo_missed[1]
              << "/" << slo_deadline_requests << " ("
              << (edf_ok ? "ok" : "EDF WORSE") << ")\n"
              << "  deterministic: " << (deterministic ? "yes" : "NO") << '\n';
    if (!gate_enforced) {
      std::cout << "  note: ljf-beats-fifo gate not enforced ("
                << hardware << " hardware threads)\n";
    }

    if (!json_path.empty()) {
      JsonValue record = JsonValue::object();
      record.set("schema", JsonValue::string("thermo.bench_dispatch.v2"));
      record.set("requests",
                 JsonValue::number(static_cast<double>(request_count)));
      record.set("small_requests",
                 JsonValue::number(static_cast<double>(small_count)));
      record.set("whale_nodes", JsonValue::number(1034.0));
      record.set("threads", JsonValue::number(static_cast<double>(threads)));
      record.set("reps", JsonValue::number(static_cast<double>(reps)));
      record.set("fifo_makespan_s", JsonValue::number(fifo_makespan));
      record.set("ljf_makespan_s", JsonValue::number(ljf_makespan));
      record.set("ljf_speedup", JsonValue::number(speedup));
      record.set("whale_wall_s",
                 JsonValue::number(timings[whale_index].wall_seconds));
      record.set("small_wall_median_s", JsonValue::number(small_median));
      record.set("measured_whale_ratio", JsonValue::number(measured_ratio));
      record.set("estimated_whale_cost",
                 JsonValue::number(timings[whale_index].cost));
      record.set("cost_rank_ok", JsonValue::boolean(cost_rank_ok));
      record.set("memo_hits", JsonValue::number(static_cast<double>(
                                  memo_second.summary.memo_hits)));
      record.set("memo_hit_rate", JsonValue::number(memo_hit_rate));
      record.set("deterministic", JsonValue::boolean(deterministic));
      record.set("gate_enforced", JsonValue::boolean(gate_enforced));
      JsonValue calibration = JsonValue::object();
      calibration.set("samples", JsonValue::number(static_cast<double>(
                                     calibrator.samples())));
      calibration.set("fixed_error", JsonValue::number(fixed_error));
      calibration.set("calibrated_error", JsonValue::number(calibrated_error));
      calibration.set("improved", JsonValue::boolean(calibration_improved));
      record.set("calibration", std::move(calibration));
      JsonValue slo = JsonValue::object();
      slo.set("deadline_requests",
              JsonValue::number(static_cast<double>(slo_deadline_requests)));
      slo.set("fifo_missed",
              JsonValue::number(static_cast<double>(slo_missed[0])));
      slo.set("edf_missed",
              JsonValue::number(static_cast<double>(slo_missed[1])));
      slo.set("edf_ok", JsonValue::boolean(edf_ok));
      record.set("slo", std::move(slo));
      std::ofstream out(json_path);
      THERMO_REQUIRE(static_cast<bool>(out),
                     "cannot open --json path for writing");
      out << record.dump() << '\n';
      out.flush();
      THERMO_REQUIRE(out.good(), "failed writing '" + json_path + "'");
      std::cout << "wrote " << json_path << '\n';
    }

    if (!deterministic) {
      std::cerr << "error: outputs differ across policies/threads/dedup\n";
      return 1;
    }
    if (memo_hit_rate != 1.0) {
      std::cerr << "error: second-pass memo hit rate "
                << format_double(memo_hit_rate * 100.0, 1) << "% != 100%\n";
      return 1;
    }
    if (!cost_rank_ok) {
      std::cerr << "error: cost model failed to rank the whale first\n";
      return 1;
    }
    if (gate_enforced && !ljf_wins) {
      std::cerr << "error: ljf makespan " << format_double(ljf_makespan, 3)
                << " s did not beat fifo " << format_double(fifo_makespan, 3)
                << " s on " << threads << " threads\n";
      return 1;
    }
    if (!calibration_improved) {
      std::cerr << "error: calibrated estimate error "
                << format_double(calibrated_error, 4)
                << " did not beat fixed constants "
                << format_double(fixed_error, 4) << '\n';
      return 1;
    }
    if (!edf_ok) {
      std::cerr << "error: edf missed " << slo_missed[1]
                << " deadlines vs fifo's " << slo_missed[0] << '\n';
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
