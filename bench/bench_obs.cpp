// Observability-layer record: what does instrumentation cost, and does
// it record the truth without touching the output?
//
//   ./build/bench/bench_obs                        # table
//   ./build/bench/bench_obs --json BENCH_obs.json
//
// One seeded gen stream (duplicates included) is served repeatedly with
// observability fully OFF (metrics disabled, no trace) and fully ON
// (metrics + an active trace recorder); min wall time per mode is
// compared. Every run — on, off, 1 thread, N threads — must produce the
// reference bytes.
//
// The JSON record (schema "thermo.bench_obs.v1") is CI-gated:
//   * overhead.ok: min instrumented wall <= min uninstrumented wall
//     * 1.05 + 0.05 s slack — the <=5% observability budget. Enforced
//     only when the run is big enough to measure (--count >= 1000 and
//     --reps >= 2); smaller smoke runs record the ratio unenforced;
//   * deterministic: observability never changes output bytes;
//   * counters_exact: after a registry reset and one fresh serve, the
//     registry's counters equal the summary's own stats EXACTLY —
//     scenario.requests == requests, dispatch.memo_hits == memo hits ==
//     the generator's duplicate count, dispatch.executed == executed;
//   * trace.ok: the recorded trace parses with util::json, every
//     thread's spans are stack-balanced with matching names, and
//     per-thread timestamps are non-decreasing (the in-process version
//     of tools/check_trace.py);
//   * disk.hits_exact (only with --cache-dir): a warm re-serve through a
//     fresh DiskResultMemo must bump dispatch.disk_memo.hits by exactly
//     the summary's disk_hits count.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dispatch/disk_result_memo.hpp"
#include "gen/generator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/serve.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace thermo;

struct RunResult {
  std::string output;
  scenario::ServeSummary summary;
};

RunResult run_serve(const std::string& requests, std::size_t threads,
                    dispatch::DiskResultMemo* disk_memo = nullptr) {
  std::istringstream in(requests);
  std::ostringstream out;
  scenario::ScenarioRunner runner;
  scenario::ServeOptions options;
  options.threads = threads;
  options.disk_memo = disk_memo;
  RunResult result;
  result.summary = scenario::serve_stream(in, out, runner, options);
  result.output = out.str();
  return result;
}

/// In-process check_trace: balanced B/E spans with matching names and
/// non-decreasing per-tid timestamps, on the parsed traceEvents array.
bool trace_is_valid(const JsonValue& snapshot, std::size_t* events_out,
                    std::size_t* spans_out) {
  const JsonValue* events = snapshot.find("traceEvents");
  if (events == nullptr || !events->is_array()) return false;
  std::map<double, double> last_ts;
  std::map<double, std::vector<std::string>> open;
  std::size_t spans = 0;
  for (const JsonValue& event : events->items()) {
    const JsonValue* tid_v = event.find("tid");
    const JsonValue* ts_v = event.find("ts");
    const JsonValue* ph_v = event.find("ph");
    const JsonValue* name_v = event.find("name");
    if (tid_v == nullptr || ts_v == nullptr || ph_v == nullptr ||
        name_v == nullptr) {
      return false;
    }
    const double tid = tid_v->as_number();
    const double ts = ts_v->as_number();
    if (last_ts.count(tid) != 0 && ts < last_ts[tid]) return false;
    last_ts[tid] = ts;
    const std::string& phase = ph_v->as_string();
    if (phase == "B") {
      open[tid].push_back(name_v->as_string());
      ++spans;
    } else if (phase == "E") {
      if (open[tid].empty() || open[tid].back() != name_v->as_string()) {
        return false;
      }
      open[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    if (!stack.empty()) return false;
  }
  *events_out = events->items().size();
  *spans_out = spans;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long long count = 2000;
  long long reps = 3;
  long long threads = 4;
  long long seed = 17;
  double dup_rate = 0.25;
  std::string cache_dir;
  std::string json_path;
  CliParser cli("bench_obs",
                "Observability record: instrumentation overhead, metric "
                "exactness, trace validity on a generated serve stream");
  cli.add_int("count", "Requests in the generated stream", &count);
  cli.add_int("reps", "Timed repetitions per mode (min wins)", &reps);
  cli.add_int("threads", "Worker threads", &threads);
  cli.add_int("seed", "Generator seed", &seed);
  cli.add_double("dup", "Duplicate-line rate in [0, 1)", &dup_rate);
  cli.add_string("cache-dir",
                 "Scratch dir for the disk-memo hit-counter check "
                 "(skipped when empty)",
                 &cache_dir);
  cli.add_string("json", "Write BENCH_obs.json-style record here",
                 &json_path);
  try {
    if (!cli.parse(argc, argv)) return 0;
    THERMO_REQUIRE(count >= 50, "--count must be >= 50");
    THERMO_REQUIRE(reps >= 1, "--reps must be >= 1");
    THERMO_REQUIRE(threads >= 1, "--threads must be >= 1");

    gen::GenConfig config;
    config.seed = static_cast<std::uint64_t>(seed);
    config.count = static_cast<std::size_t>(count);
    config.dup_rate = dup_rate;
    config.order = gen::OrderPattern::kShuffled;
    const gen::GeneratedStream stream = gen::generate_stream(config);
    std::ostringstream request_buffer;
    gen::write_stream(stream, request_buffer);
    const std::string requests = request_buffer.str();

    obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
    obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
    const std::size_t workers = static_cast<std::size_t>(threads);

    // Byte reference: 1 thread, observability on (the default state).
    const RunResult reference = run_serve(requests, 1);
    bool deterministic = reference.summary.failed == 0;

    // Timed reps, alternating OFF/ON inside each rep so cache warmth
    // and CPU-frequency drift hit both modes evenly. ON = metrics
    // enabled AND an active trace recorder — the full-cost path.
    double off_min_s = 0.0;
    double on_min_s = 0.0;
    JsonValue last_trace = JsonValue::object();
    for (long long rep = 0; rep < reps; ++rep) {
      obs::set_enabled(false);
      const RunResult off = run_serve(requests, workers);
      obs::set_enabled(true);
      deterministic = deterministic && off.output == reference.output;
      if (rep == 0 || off.summary.wall_seconds < off_min_s) {
        off_min_s = off.summary.wall_seconds;
      }

      recorder.start();
      const RunResult on = run_serve(requests, workers);
      recorder.stop();
      deterministic = deterministic && on.output == reference.output;
      if (rep == 0 || on.summary.wall_seconds < on_min_s) {
        on_min_s = on.summary.wall_seconds;
      }
      if (rep == reps - 1) last_trace = recorder.snapshot_json();
    }
    const double overhead_ratio =
        off_min_s > 0.0 ? (on_min_s - off_min_s) / off_min_s : 0.0;
    // Sub-second batches drown in scheduler noise, so the 5% gate gets
    // a 50 ms absolute slack and is only enforced on real runs.
    const bool gate_enforced = count >= 1000 && reps >= 2;
    const bool overhead_ok = on_min_s <= off_min_s * 1.05 + 0.05;

    // Trace validity on the last instrumented run — round-tripped
    // through dump/parse so the gate covers the exported bytes.
    std::size_t trace_events = 0;
    std::size_t trace_spans = 0;
    const bool trace_ok = trace_is_valid(parse_json(last_trace.dump()),
                                         &trace_events, &trace_spans);

    // Counter exactness: a registry reset, one fresh serve, and the
    // registry must agree with the summary event for event.
    registry.reset();
    const RunResult counted = run_serve(requests, workers);
    const scenario::ServeSummary& summary = counted.summary;
    deterministic = deterministic && counted.output == reference.output;
    const bool counters_exact =
        registry.counter("scenario.requests").value() == summary.requests &&
        summary.requests == static_cast<std::size_t>(count) &&
        registry.counter("dispatch.memo_hits").value() ==
            summary.memo_hits &&
        summary.memo_hits == stream.stats.duplicates &&
        registry.counter("dispatch.executed").value() == summary.executed &&
        registry.histogram("dispatch.exec_ns").count() == summary.executed;

    // Disk-memo phase (needs a scratch dir): cold serve populates the
    // cache, then a warm serve through a FRESH memo must answer from
    // disk and bump dispatch.disk_memo.hits by exactly disk_hits.
    bool disk_checked = false;
    bool disk_exact = true;
    std::size_t disk_hits = 0;
    if (!cache_dir.empty()) {
      disk_checked = true;
      {
        dispatch::DiskResultMemo cold(cache_dir);
        const RunResult seeded = run_serve(requests, workers, &cold);
        deterministic = deterministic && seeded.output == reference.output;
      }
      const std::uint64_t hits_before =
          registry.counter("dispatch.disk_memo.hits").value();
      dispatch::DiskResultMemo warm(cache_dir);
      const RunResult warmed = run_serve(requests, workers, &warm);
      deterministic = deterministic && warmed.output == reference.output;
      disk_hits = warmed.summary.disk_hits;
      const std::uint64_t hit_delta =
          registry.counter("dispatch.disk_memo.hits").value() - hits_before;
      disk_exact = disk_hits > 0 && hit_delta == disk_hits;
    }

    std::cout << "obs bench: " << count << " requests ("
              << stream.stats.duplicates << " duplicates), " << workers
              << " threads, " << reps << " reps\n"
              << "  wall min: off " << format_double(off_min_s, 3)
              << " s, on " << format_double(on_min_s, 3) << " s (overhead "
              << format_double(overhead_ratio * 100.0, 1) << "%, gate "
              << (gate_enforced ? "enforced" : "recorded") << ", "
              << (overhead_ok ? "ok" : "EXCEEDED") << ")\n"
              << "  deterministic: " << (deterministic ? "yes" : "NO")
              << ", counters exact: " << (counters_exact ? "yes" : "NO")
              << ", trace: " << trace_events << " events, " << trace_spans
              << " spans, " << (trace_ok ? "balanced" : "INVALID") << '\n';
    if (disk_checked) {
      std::cout << "  disk memo: " << disk_hits << " hits, counter "
                << (disk_exact ? "exact" : "MISMATCH") << '\n';
    }

    if (!json_path.empty()) {
      JsonValue record = JsonValue::object();
      record.set("schema", JsonValue::string("thermo.bench_obs.v1"));
      record.set("count", JsonValue::number(static_cast<double>(count)));
      record.set("reps", JsonValue::number(static_cast<double>(reps)));
      record.set("threads",
                 JsonValue::number(static_cast<double>(workers)));
      record.set("duplicates", JsonValue::number(static_cast<double>(
                                   stream.stats.duplicates)));
      JsonValue overhead = JsonValue::object();
      overhead.set("off_wall_s", JsonValue::number(off_min_s));
      overhead.set("on_wall_s", JsonValue::number(on_min_s));
      overhead.set("ratio", JsonValue::number(overhead_ratio));
      overhead.set("gate_enforced", JsonValue::boolean(gate_enforced));
      overhead.set("ok", JsonValue::boolean(overhead_ok));
      record.set("overhead", std::move(overhead));
      record.set("deterministic", JsonValue::boolean(deterministic));
      record.set("counters_exact", JsonValue::boolean(counters_exact));
      JsonValue trace = JsonValue::object();
      trace.set("events",
                JsonValue::number(static_cast<double>(trace_events)));
      trace.set("spans",
                JsonValue::number(static_cast<double>(trace_spans)));
      trace.set("ok", JsonValue::boolean(trace_ok));
      record.set("trace", std::move(trace));
      JsonValue disk = JsonValue::object();
      disk.set("checked", JsonValue::boolean(disk_checked));
      disk.set("hits",
               JsonValue::number(static_cast<double>(disk_hits)));
      disk.set("hits_exact", JsonValue::boolean(disk_exact));
      record.set("disk", std::move(disk));
      std::ofstream json_file(json_path);
      THERMO_REQUIRE(static_cast<bool>(json_file),
                     "cannot open --json path " + json_path);
      json_file << record.dump() << '\n';
      std::cout << "wrote " << json_path << '\n';
    }

    const bool failed = !deterministic || !counters_exact || !trace_ok ||
                        (gate_enforced && !overhead_ok) ||
                        (disk_checked && !disk_exact);
    return failed ? 1 : 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
