// Ablation D: block-granularity oracle vs grid-granularity oracle.
//
// The paper validates sessions with HotSpot's block model (as RCModel
// does). A finer grid model exposes intra-block gradients the block
// model averages away. This bench quantifies, on the Alpha-15 SoC:
//  * per-block steady-state temperature differences between the models
//    under a representative hot session;
//  * whether the block oracle's *ranking* of sessions survives at grid
//    granularity (it must, for Algorithm 1's accept/reject decisions to
//    be meaningful);
//  * grid solve cost vs grid resolution (CG iterations).
#include <algorithm>
#include <iostream>

#include "core/schedule.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/steady_state.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main() {
  std::cout << "=== Ablation D: block model vs grid model ===\n\n";
  const core::SocSpec soc = soc::alpha_soc();
  const thermal::RCModel block_model(soc.flp, soc.package);
  const thermal::GridThermalModel grid(soc.flp, soc.package,
                                       thermal::GridOptions{64, 64});

  // Representative hot session: the CPU cluster's three hottest units.
  core::TestSession session;
  for (const char* name : {"Icache", "Dcache", "IntReg"}) {
    session.cores.push_back(*soc.flp.index_of(name));
  }
  const std::vector<double> power = session.power_map(soc);

  const thermal::SteadyStateResult block_result =
      thermal::solve_steady_state(block_model, power);
  const thermal::GridSteadyResult grid_result = grid.solve(power);

  Table table({"core", "block model [C]", "grid mean [C]", "grid max [C]",
               "max - block [K]"});
  for (std::size_t core : session.cores) {
    table.add_row(
        {soc.flp.block(core).name,
         format_double(block_result.temperature[core], 2),
         format_double(grid_result.block_mean_temperature[core], 2),
         format_double(grid_result.block_max_temperature[core], 2),
         format_double(grid_result.block_max_temperature[core] -
                           block_result.temperature[core],
                       2)});
  }
  table.print(std::cout);

  // Session ranking fidelity: order 6 candidate sessions by both oracles.
  const char* candidates[][3] = {
      {"Icache", "Dcache", "IntReg"}, {"L2_0", "L2_1", "Router"},
      {"Bpred", "IntMap", "FPAdd"},   {"MC0", "MC1", "IO"},
      {"LSQ", "IntExe", "FPMul"},     {"Icache", "L2_0", "MC0"},
  };
  std::vector<double> block_peak, grid_peak;
  for (const auto& names : candidates) {
    core::TestSession candidate;
    for (const char* name : names) {
      candidate.cores.push_back(*soc.flp.index_of(name));
    }
    const auto bp = thermal::solve_steady_state(block_model,
                                                candidate.power_map(soc));
    const auto gp = grid.solve(candidate.power_map(soc));
    block_peak.push_back(thermal::max_block_temperature(block_model, bp));
    grid_peak.push_back(*std::max_element(gp.block_max_temperature.begin(),
                                          gp.block_max_temperature.end()));
  }
  std::cout << "\nsession ranking (hotter first):\n";
  Table rank({"session", "block peak [C]", "grid peak [C]"});
  for (std::size_t i = 0; i < block_peak.size(); ++i) {
    rank.add_row({std::string(candidates[i][0]) + "+" + candidates[i][1] +
                      "+" + candidates[i][2],
                  format_double(block_peak[i], 1),
                  format_double(grid_peak[i], 1)});
  }
  rank.print(std::cout);

  // Rank agreement (pairwise concordance).
  std::size_t concordant = 0, pairs = 0;
  for (std::size_t i = 0; i < block_peak.size(); ++i) {
    for (std::size_t j = i + 1; j < block_peak.size(); ++j) {
      ++pairs;
      if ((block_peak[i] < block_peak[j]) == (grid_peak[i] < grid_peak[j])) {
        ++concordant;
      }
    }
  }
  std::cout << "pairwise rank agreement: " << concordant << "/" << pairs
            << "\n\n";

  Table cost({"grid", "cells", "CG iterations"});
  for (std::size_t side : {16, 32, 64, 96}) {
    const thermal::GridThermalModel g(
        soc.flp, soc.package, thermal::GridOptions{side, side});
    const auto r = g.solve(power);
    cost.add_row({std::to_string(side) + "x" + std::to_string(side),
                  std::to_string(side * side), std::to_string(r.iterations)});
  }
  cost.print(std::cout);
  return 0;
}
