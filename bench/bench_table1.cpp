// Regenerates Table 1 of the paper: test schedule length, simulation
// effort and maximum simulated temperature vs the temperature limit TL
// (145..185 C, step 5) and the session thermal characteristic limit
// STCL (20..100, step 10), on the 15-core Alpha-like SoC.
//
// Expected shape (paper, Section 4):
//  * schedule length is non-increasing in TL and (mostly) in STCL;
//  * relaxed STCL buys shorter schedules at the price of simulation
//    effort (many discarded sessions);
//  * for tight STCL the effort equals the schedule length (first-attempt
//    success) at high TL;
//  * max temperature approaches TL for short schedules, and stays far
//    below TL when STCL (not TL) is the binding constraint.
// Absolute values differ from the paper (different floorplan/package,
// see docs/ARCHITECTURE.md, "Deviations from the paper").
#include <iostream>

#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main() {
  std::cout << "=== Table 1 reproduction: length / effort / max temp vs TL "
               "and STCL ===\n\n";
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

  Table table({"TL [C]", "STCL", "length [s]", "effort [s]", "max temp [C]",
               "discards"});
  for (double tl = 145.0; tl <= 185.0 + 1e-9; tl += 5.0) {
    for (double stcl = 20.0; stcl <= 100.0 + 1e-9; stcl += 10.0) {
      core::ThermalSchedulerOptions options;
      options.temperature_limit = tl;
      options.stc_limit = stcl;
      options.model.stc_scale = soc::alpha_stc_scale();
      const core::ThermalAwareScheduler scheduler(options);
      const core::ScheduleResult result = scheduler.generate(soc, analyzer);

      table.add_row({format_double(tl, 0), format_double(stcl, 0),
                     format_double(result.schedule_length, 0),
                     format_double(result.simulation_effort, 0),
                     format_double(result.max_temperature, 2),
                     std::to_string(result.discarded_sessions)});
    }
  }
  table.print(std::cout);

  std::cout << "\ncsv:\n";
  table.print_csv(std::cout);
  return 0;
}
