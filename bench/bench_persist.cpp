// Persistent result-cache record: how much does `serve --cache-dir` buy
// a restarted process, and does the cache keep its contracts while
// buying it?
//
//   ./build/bench/bench_persist                      # human-readable table
//   ./build/bench/bench_persist --json BENCH_persist.json
//
// One seeded generated batch (duplicates included) is served three
// times over one cache directory, each serve a fresh "process" (cold
// ScenarioRunner, cold DiskResultMemo):
//   run 1  cold cache  — every distinct request executes and persists;
//   run 2  warm cache  — must execute NOTHING: every distinct request
//          answered from disk, byte-identical output;
//   run 3  after verify() + compact() — still byte-identical, proving
//          maintenance never changes served bytes.
//
// The JSON record (schema "thermo.bench_persist.v1") is CI-gated; the
// bench exits non-zero when any of these fail:
//   * byte_identical        run 2 and run 3 bytes == run 1 bytes;
//   * warm_executed == 0    the warm process recomputed nothing;
//   * disk_hit_rate >= 0.99 disk answers per distinct request;
//   * verify_clean          no checksum damage after the runs;
//   * speedup >= 2 when gate_enforced (run 1 took >= 50 ms — below
//     that the serve is too cheap for the ratio to mean anything; the
//     value is still recorded).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "dispatch/disk_result_memo.hpp"
#include "gen/generator.hpp"
#include "scenario/serve.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace thermo;

struct Run {
  std::string output;
  scenario::ServeSummary summary;
};

/// One "process": everything in-memory is constructed and torn down
/// here; only the cache directory survives between calls.
Run serve_process(const std::string& requests, const std::string& cache_dir,
                  std::size_t threads) {
  std::istringstream in(requests);
  std::ostringstream out;
  scenario::ScenarioRunner runner;
  dispatch::DiskResultMemo memo(cache_dir);
  scenario::ServeOptions options;
  options.threads = threads;
  options.disk_memo = &memo;
  const auto summary = scenario::serve_stream(in, out, runner, options);
  return Run{out.str(), summary};
}

}  // namespace

int main(int argc, char** argv) {
  long long count = 80;
  long long seed = 9;
  double dup_rate = 0.3;
  long long threads = 0;
  std::string cache_dir = "bench_persist_cache";
  std::string json_path;
  CliParser cli("bench_persist",
                "Cold-vs-warm record for the disk-backed result cache");
  cli.add_int("count", "Generated batch size (duplicates included)", &count);
  cli.add_int("seed", "Generator seed", &seed);
  cli.add_double("dup", "Duplicate-line rate in [0,1)", &dup_rate);
  cli.add_int("threads", "Worker threads (0 = hardware)", &threads);
  cli.add_string("cache-dir", "Cache directory (wiped at start)", &cache_dir);
  cli.add_string("json", "Write BENCH_persist.json-style record here",
                 &json_path);
  try {
    if (!cli.parse(argc, argv)) return 0;
    THERMO_REQUIRE(count >= 1, "--count must be >= 1");
    THERMO_REQUIRE(seed >= 0, "--seed must be >= 0");
    THERMO_REQUIRE(!cache_dir.empty(), "--cache-dir must be non-empty");

    gen::GenConfig config;
    config.seed = static_cast<std::uint64_t>(seed);
    config.count = static_cast<std::size_t>(count);
    config.dup_rate = dup_rate;
    // Small-core ladder: the bench measures the CACHE, not the solver —
    // whale requests would just stretch run 1.
    config.core_ladder = {8, 16, 34, 64};
    const gen::GeneratedStream stream = gen::generate_stream(config);
    std::string requests;
    for (const std::string& line : stream.lines) requests += line + "\n";

    std::filesystem::remove_all(cache_dir);  // always a cold start

    const Run cold = serve_process(requests, cache_dir,
                                   static_cast<std::size_t>(threads));
    THERMO_REQUIRE(cold.summary.failed == 0,
                   "generated batch had failing requests");
    const Run warm = serve_process(requests, cache_dir,
                                   static_cast<std::size_t>(threads));

    // Maintenance pass in its own "process": verify, compact, reserve.
    bool verify_clean = false;
    std::size_t segments_before = 0;
    std::size_t segments_after = 0;
    {
      dispatch::DiskResultMemo memo(cache_dir);
      verify_clean = memo.store().verify().clean();
      segments_before = memo.store().stats().segments;
      memo.store().compact();
      segments_after = memo.store().stats().segments;
    }
    const Run compacted = serve_process(requests, cache_dir,
                                        static_cast<std::size_t>(threads));

    const bool byte_identical = warm.output == cold.output &&
                                compacted.output == cold.output;
    const std::size_t distinct = stream.stats.fresh;
    const double disk_hit_rate =
        distinct > 0 ? static_cast<double>(warm.summary.disk_hits) /
                           static_cast<double>(distinct)
                     : 0.0;
    const double speedup = warm.summary.wall_seconds > 0.0
                               ? cold.summary.wall_seconds /
                                     warm.summary.wall_seconds
                               : 0.0;
    const bool gate_enforced = cold.summary.wall_seconds >= 0.05;
    const bool ok = byte_identical && warm.summary.executed == 0 &&
                    disk_hit_rate >= 0.99 && verify_clean &&
                    (!gate_enforced || speedup >= 2.0);

    std::cout << "persist cache: " << cold.summary.requests << " requests, "
              << distinct << " distinct (dup rate "
              << format_double(dup_rate, 2) << ")\n"
              << "  cold run : " << format_double(cold.summary.wall_seconds, 3)
              << " s, executed " << cold.summary.executed << '\n'
              << "  warm run : " << format_double(warm.summary.wall_seconds, 3)
              << " s, executed " << warm.summary.executed << ", "
              << warm.summary.disk_hits << " disk hits ("
              << format_double(100.0 * disk_hit_rate, 1) << "%)\n"
              << "  speedup  : " << format_double(speedup, 2) << "x"
              << (gate_enforced ? "" : " (not gated: cold run < 50 ms)")
              << '\n'
              << "  compact  : " << segments_before << " -> "
              << segments_after << " segments, verify "
              << (verify_clean ? "clean" : "DAMAGED") << '\n'
              << "  bytes    : "
              << (byte_identical ? "identical across all runs"
                                 : "DIFFER — cache changed served bytes")
              << '\n';

    if (!json_path.empty()) {
      JsonValue record = JsonValue::object();
      record.set("schema", JsonValue::string("thermo.bench_persist.v1"));
      record.set("requests",
                 JsonValue::number(static_cast<double>(cold.summary.requests)));
      record.set("distinct", JsonValue::number(static_cast<double>(distinct)));
      record.set("seed", JsonValue::number(static_cast<double>(seed)));
      record.set("dup_rate", JsonValue::number(dup_rate));
      record.set("cold_run_s", JsonValue::number(cold.summary.wall_seconds));
      record.set("warm_run_s", JsonValue::number(warm.summary.wall_seconds));
      record.set("speedup", JsonValue::number(speedup));
      record.set("speedup_gate_enforced", JsonValue::boolean(gate_enforced));
      record.set("warm_executed", JsonValue::number(
                                      static_cast<double>(warm.summary.executed)));
      record.set("disk_hits", JsonValue::number(
                                  static_cast<double>(warm.summary.disk_hits)));
      record.set("disk_hit_rate", JsonValue::number(disk_hit_rate));
      record.set("disk_records",
                 JsonValue::number(static_cast<double>(warm.summary.disk_records)));
      record.set("disk_bytes",
                 JsonValue::number(static_cast<double>(warm.summary.disk_bytes)));
      record.set("segments_before_compact",
                 JsonValue::number(static_cast<double>(segments_before)));
      record.set("segments_after_compact",
                 JsonValue::number(static_cast<double>(segments_after)));
      record.set("byte_identical", JsonValue::boolean(byte_identical));
      record.set("verify_clean", JsonValue::boolean(verify_clean));
      std::ofstream out(json_path);
      THERMO_REQUIRE(static_cast<bool>(out),
                     "cannot open --json path for writing");
      out << record.dump() << '\n';
      out.flush();
      THERMO_REQUIRE(out.good(), "failed writing '" + json_path + "'");
      std::cout << "wrote " << json_path << '\n';
    }
    return ok ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
