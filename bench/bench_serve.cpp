// Serve-path throughput record: run the demo request batch through
// scenario::serve_stream once on 1 thread and once on all hardware
// threads, check the outputs are bit-identical, and report throughput.
//
//   ./build/bench/bench_serve                      # human-readable table
//   ./build/bench/bench_serve --json BENCH_serve.json
//
// The JSON record (schema "thermo.bench_serve.v1") is the serve
// subsystem's perf-trajectory point; CI produces and schema-validates it
// on every push and fails when `deterministic` is false or any request
// errored. Fields:
//   requests, ok, failed     batch composition (ok must equal requests)
//   threads                  workers used in the parallel run
//   serial_s / parallel_s    wall time of the 1-thread / N-thread run
//   speedup                  serial_s / parallel_s
//   requests_per_s           requests / parallel_s
//   deterministic            1-thread and N-thread outputs byte-equal
#include <fstream>
#include <iostream>
#include <sstream>

#include "scenario/demo.hpp"
#include "scenario/serve.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

struct Run {
  std::string output;
  thermo::scenario::ServeSummary summary;
};

Run run_batch(const std::string& requests, std::size_t threads) {
  std::istringstream in(requests);
  std::ostringstream out;
  thermo::scenario::ScenarioRunner runner;  // cold model cache per run
  thermo::scenario::ServeOptions options;
  options.threads = threads;
  const auto summary =
      thermo::scenario::serve_stream(in, out, runner, options);
  return Run{out.str(), summary};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thermo;
  long long count = 120;
  long long seed = 20;
  std::string json_path;
  CliParser cli("bench_serve",
                "Throughput + determinism record for the serve batch path");
  cli.add_int("requests", "Batch size", &count);
  cli.add_int("seed", "Demo-batch seed", &seed);
  cli.add_string("json", "Write BENCH_serve.json-style record here",
                 &json_path);
  try {
    if (!cli.parse(argc, argv)) return 0;
    THERMO_REQUIRE(count >= 1, "--requests must be >= 1");
    THERMO_REQUIRE(seed >= 0, "--seed must be >= 0");

    std::string requests;
    for (const scenario::ScenarioRequest& request : scenario::demo_batch(
             static_cast<std::size_t>(count), static_cast<std::uint64_t>(seed))) {
      requests += scenario::to_json_line(request);
      requests += '\n';
    }

    const Run serial = run_batch(requests, 1);
    const Run parallel = run_batch(requests, 0);  // 0 = hardware threads
    const bool deterministic = serial.output == parallel.output;
    const double speedup =
        parallel.summary.wall_seconds > 0.0
            ? serial.summary.wall_seconds / parallel.summary.wall_seconds
            : 0.0;
    const double rate = parallel.summary.wall_seconds > 0.0
                            ? static_cast<double>(parallel.summary.requests) /
                                  parallel.summary.wall_seconds
                            : 0.0;

    std::cout << "serve batch: " << parallel.summary.requests << " requests ("
              << parallel.summary.succeeded << " ok, "
              << parallel.summary.failed << " failed)\n"
              << "  1 thread : " << format_double(serial.summary.wall_seconds, 3)
              << " s\n"
              << "  " << parallel.summary.threads << " threads: "
              << format_double(parallel.summary.wall_seconds, 3) << " s ("
              << format_double(speedup, 2) << "x, "
              << format_double(rate, 1) << " req/s)\n"
              << "  deterministic: " << (deterministic ? "yes" : "NO") << '\n';

    if (!json_path.empty()) {
      JsonValue record = JsonValue::object();
      record.set("schema", JsonValue::string("thermo.bench_serve.v1"));
      record.set("requests", JsonValue::number(static_cast<double>(
                                 parallel.summary.requests)));
      record.set("ok", JsonValue::number(static_cast<double>(
                           parallel.summary.succeeded)));
      record.set("failed", JsonValue::number(static_cast<double>(
                               parallel.summary.failed)));
      record.set("threads", JsonValue::number(static_cast<double>(
                                parallel.summary.threads)));
      record.set("serial_s", JsonValue::number(serial.summary.wall_seconds));
      record.set("parallel_s",
                 JsonValue::number(parallel.summary.wall_seconds));
      record.set("speedup", JsonValue::number(speedup));
      record.set("requests_per_s", JsonValue::number(rate));
      record.set("deterministic", JsonValue::boolean(deterministic));
      std::ofstream out(json_path);
      THERMO_REQUIRE(static_cast<bool>(out),
                     "cannot open --json path for writing");
      out << record.dump() << '\n';
      out.flush();
      THERMO_REQUIRE(out.good(), "failed writing '" + json_path + "'");
      std::cout << "wrote " << json_path << '\n';
    }
    return deterministic ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
