// Regenerates Figure 5 of the paper: test schedule length and simulation
// effort as functions of the session thermal characteristic limit STCL,
// for TL in {145, 155, 165} C, on the 15-core Alpha-like SoC.
//
// The paper plots both series against "1/STCL" (tight constraints to the
// right); we print STCL directly plus the six series. Expected shape:
// relaxed (large) STCL gives short schedules at high simulation effort;
// tight STCL gives longer schedules found on the first attempt (effort
// equals schedule length); larger TL shifts both curves down.
#include <iostream>

#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main() {
  std::cout << "=== Figure 5 reproduction: length & effort vs STCL ===\n\n";
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

  const double tls[] = {145.0, 155.0, 165.0};

  Table table({"STCL", "len(TL=145)", "effort(TL=145)", "len(TL=155)",
               "effort(TL=155)", "len(TL=165)", "effort(TL=165)"});
  for (double stcl = 20.0; stcl <= 100.0 + 1e-9; stcl += 10.0) {
    std::vector<std::string> row{format_double(stcl, 0)};
    for (double tl : tls) {
      core::ThermalSchedulerOptions options;
      options.temperature_limit = tl;
      options.stc_limit = stcl;
      options.model.stc_scale = soc::alpha_stc_scale();
      const core::ThermalAwareScheduler scheduler(options);
      const core::ScheduleResult result = scheduler.generate(soc, analyzer);
      row.push_back(format_double(result.schedule_length, 0));
      row.push_back(format_double(result.simulation_effort, 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\ncsv:\n";
  table.print_csv(std::cout);

  std::cout << "\npaper reference points (their floorplan): TL=145, STCL=100"
               " -> 3 s schedule, 26 s effort; STCL<=30 -> effort == length.\n";
  return 0;
}
