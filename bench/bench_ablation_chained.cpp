// Ablation F: the independent-session assumption.
//
// The paper (and Algorithm 1) simulates every test session from ambient,
// implicitly assuming the chip cools between sessions. On a real tester
// sessions run back to back. This bench re-validates Algorithm 1's
// schedules with the *chained* oracle (residual heat carries over, with
// a configurable cooling gap) and reports how much margin the
// independent assumption eats - and what cooling gap restores safety.
#include <iostream>

#include "core/safety_checker.hpp"
#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main() {
  std::cout << "=== Ablation F: independent vs chained sessions ===\n\n";
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

  Table table({"TL [C]", "STCL", "independent max [C]", "chained max [C]",
               "delta [K]", "chained violations", "gap to safety [s]"});
  for (double tl : {155.0, 170.0}) {
    for (double stcl : {30.0, 70.0}) {
      core::ThermalSchedulerOptions options;
      options.temperature_limit = tl;
      options.stc_limit = stcl;
      options.model.stc_scale = soc::alpha_stc_scale();
      const core::ScheduleResult result =
          core::ThermalAwareScheduler(options).generate(soc, analyzer);

      const core::SafetyReport independent =
          core::SafetyChecker(tl).check(soc, result.schedule, analyzer);

      core::SafetyChecker::Options copt;
      copt.chained = true;
      const core::SafetyReport chained = core::SafetyChecker(tl, copt).check(
          soc, result.schedule, analyzer);

      // Smallest cooling gap (in 0.5 s steps) that restores safety.
      double safe_gap = 0.0;
      if (!chained.safe) {
        for (double gap = 0.5; gap <= 20.0; gap += 0.5) {
          core::SafetyChecker::Options gopt;
          gopt.chained = true;
          gopt.cooling_gap = gap;
          if (core::SafetyChecker(tl, gopt)
                  .check(soc, result.schedule, analyzer)
                  .safe) {
            safe_gap = gap;
            break;
          }
        }
      }

      table.add_row(
          {format_double(tl, 0), format_double(stcl, 0),
           format_double(independent.max_temperature, 2),
           format_double(chained.max_temperature, 2),
           format_double(chained.max_temperature - independent.max_temperature,
                         2),
           std::to_string(chained.violations.size()),
           chained.safe ? "0 (already safe)" : format_double(safe_gap, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\ninterpretation: the chained oracle runs hotter by the "
               "residual-heat delta;\na short inter-session cooling gap "
               "recovers the paper's independent-session safety.\n";
  return 0;
}
