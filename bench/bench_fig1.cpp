// Regenerates Figure 1 of the paper (motivational example).
//
// Paper setup: hypothetical 7-core SoC, every core dissipates 15 W under
// test. Under a 45 W chip-level power constraint, a power-constrained
// scheduler accepts both TS1 = {C2,C3,C4} and TS2 = {C5,C6,C7}; thermal
// simulation shows TS1 reaches 125.5 C while TS2 stays at 67.5 C.
//
// We report the same artefacts on our reconstruction of the example:
// both sessions pass the power check, and TS1 runs far hotter than TS2
// because its cores have 4x the power density. Absolute temperatures
// depend on the package (see docs/ARCHITECTURE.md, "Deviations
// from the paper"); the shape - a large
// gap at identical session power - is the reproduced result.
#include <iostream>

#include "core/power_scheduler.hpp"
#include "soc/fig1.hpp"
#include "thermal/analyzer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main() {
  std::cout << "=== Figure 1 reproduction: power budget vs hot spots ===\n\n";
  const core::SocSpec soc = soc::fig1_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

  const core::TestSession ts1 = soc::fig1_session_ts1(soc);
  const core::TestSession ts2 = soc::fig1_session_ts2(soc);

  // A 45 W power-constrained scheduler accepts each session (3 x 15 W).
  Table accept({"session", "cores", "power [W]", "within 45 W budget"});
  for (const auto& [session, name] :
       {std::pair{&ts1, "TS1"}, std::pair{&ts2, "TS2"}}) {
    double power = 0.0;
    for (std::size_t c : session->cores) power += soc.tests[c].power;
    accept.add_row({name, session->to_string(soc), format_double(power, 1),
                    power <= soc::kFig1PowerLimit ? "yes" : "no"});
  }
  accept.print(std::cout);

  const thermal::SessionSimulation sim1 =
      analyzer.simulate_session(ts1.power_map(soc), ts1.length(soc));
  const thermal::SessionSimulation sim2 =
      analyzer.simulate_session(ts2.power_map(soc), ts2.length(soc));

  std::cout << "\n";
  Table result({"quantity", "paper", "measured"});
  result.add_row({"Tmax(TS1) [C]", "125.5", format_double(sim1.max_temperature, 1)});
  result.add_row({"Tmax(TS2) [C]", "67.5", format_double(sim2.max_temperature, 1)});
  result.add_row({"gap TS1-TS2 [K]", "58.0",
                  format_double(sim1.max_temperature - sim2.max_temperature, 1)});
  result.add_row(
      {"power density C2 / C5", "4.0",
       format_double(soc.power_density(*soc.flp.index_of("C2")) /
                         soc.power_density(*soc.flp.index_of("C5")),
                     1)});
  result.print(std::cout);

  std::cout << "\nconclusion: both sessions satisfy the chip-level power "
               "constraint,\nbut only TS2 is thermally benign - power "
               "constraints do not prevent local overheating.\n";
  return 0;
}
