// Generator-fed serve record: push one deterministic gen stream (skewed
// sizes, duplicated lines, shuffled arrival) through the full serve
// stack in every dispatch configuration and prove the pipeline keeps
// its promises at scale.
//
//   ./build/bench/bench_gen                        # table
//   ./build/bench/bench_gen --json BENCH_gen.json
//
// The stream is gen::generate_stream at --count/--seed/--dup/--zipf
// (default: 10k requests, 30% duplicates, Zipf 1.5 over the ladder that
// straddles the dense/sparse crossover). It is served under all eight
// {1, N threads} x {fifo, ljf} x {dedup on, off} configurations against
// a 1-thread fifo reference.
//
// The JSON record (schema "thermo.bench_gen.v1") is CI-gated:
//   * deterministic: every configuration's output is byte-identical to
//     the reference — thread count, policy, and dedup may change when
//     work runs, never what is written;
//   * all_ok: no request in the generated stream fails to serve;
//   * memo_exact: with dedup on, memo hits == the generator's duplicate
//     count EXACTLY. Fresh requests carry unique ids, so the serve memo
//     (keyed on canonical request content) can only hit on deliberate
//     verbatim copies — any drift means either the generator leaked a
//     collision or the memo key went soft;
//   * mix_ok: the measured duplicate share and per-kind line shares are
//     within 0.05 of the configured knobs, and both new request kinds
//     (ptrace, chained) actually appear.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "scenario/serve.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace thermo;

struct ConfigResult {
  std::size_t threads = 0;
  dispatch::SchedulePolicy policy = dispatch::SchedulePolicy::kFifo;
  bool dedup = false;
  double makespan_s = 0.0;
  double req_per_s = 0.0;
  std::size_t memo_hits = 0;
  bool matches_reference = false;
};

}  // namespace

int main(int argc, char** argv) {
  long long count = 10000;
  long long threads = 4;
  long long seed = 42;
  double dup_rate = 0.3;
  double zipf_skew = 1.5;
  std::string json_path;
  CliParser cli("bench_gen",
                "Generated-stream serve record: one seeded gen stream "
                "through every {threads} x {policy} x {dedup} configuration");
  cli.add_int("count", "Requests in the generated stream", &count);
  cli.add_int("threads", "Worker threads for the N-thread configs", &threads);
  cli.add_int("seed", "Generator seed", &seed);
  cli.add_double("dup", "Duplicate-line rate in [0, 1)", &dup_rate);
  cli.add_double("zipf", "Zipf skew over the core ladder", &zipf_skew);
  cli.add_string("json", "Write BENCH_gen.json-style record here", &json_path);
  try {
    if (!cli.parse(argc, argv)) return 0;
    THERMO_REQUIRE(count >= 100, "--count must be >= 100");
    THERMO_REQUIRE(threads >= 2, "--threads must be >= 2");
    THERMO_REQUIRE(seed >= 0, "--seed must be >= 0");

    gen::GenConfig config;
    config.seed = static_cast<std::uint64_t>(seed);
    config.count = static_cast<std::size_t>(count);
    config.dup_rate = dup_rate;
    config.zipf_skew = zipf_skew;
    config.order = gen::OrderPattern::kShuffled;

    const auto gen_start = std::chrono::steady_clock::now();
    const gen::GeneratedStream stream = gen::generate_stream(config);
    const double gen_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      gen_start)
            .count();
    std::ostringstream request_buffer;
    gen::write_stream(stream, request_buffer);
    const std::string requests = request_buffer.str();
    const double n = static_cast<double>(stream.stats.count);

    // Mix gate: the knobs must be visible in the stream itself, and the
    // stream must exercise both new request kinds. Deterministic per
    // seed, so this is a regression pin, not a flaky statistical test.
    const double dup_share = static_cast<double>(stream.stats.duplicates) / n;
    const double sweep_share = static_cast<double>(stream.stats.sweep) / n;
    const double ptrace_share = static_cast<double>(stream.stats.ptrace) / n;
    const double chained_share = static_cast<double>(stream.stats.chained) / n;
    const gen::KindMix mix;  // generator defaults (0.7 / 0.15 / 0.15)
    const bool mix_ok =
        std::abs(dup_share - dup_rate) <= 0.05 &&
        std::abs(sweep_share - mix.sweep) <= 0.05 &&
        std::abs(ptrace_share - mix.ptrace) <= 0.05 &&
        std::abs(chained_share - mix.chained) <= 0.05 &&
        stream.stats.ptrace > 0 && stream.stats.chained > 0;

    // Eight serve configurations; the first (1-thread fifo, dedup off)
    // is the byte reference. Fresh runner per run: every configuration
    // pays the same cold model-cache cost.
    std::vector<ConfigResult> results;
    std::string reference_output;
    bool deterministic = true;
    bool all_ok = true;
    bool memo_exact = true;
    for (const bool dedup : {false, true}) {
      for (const dispatch::SchedulePolicy policy :
           {dispatch::SchedulePolicy::kFifo, dispatch::SchedulePolicy::kLjf}) {
        for (const std::size_t worker_count :
             {std::size_t{1}, static_cast<std::size_t>(threads)}) {
          scenario::ServeOptions options;
          options.threads = worker_count;
          options.policy = policy;
          options.dedup = dedup;
          std::istringstream in(requests);
          std::ostringstream out;
          scenario::ScenarioRunner runner;
          const scenario::ServeSummary summary =
              scenario::serve_stream(in, out, runner, options);

          ConfigResult result;
          result.threads = worker_count;
          result.policy = policy;
          result.dedup = dedup;
          result.makespan_s = summary.makespan_seconds;
          result.req_per_s = summary.makespan_seconds > 0.0
                                 ? n / summary.makespan_seconds
                                 : 0.0;
          result.memo_hits = summary.memo_hits;
          if (reference_output.empty()) {
            reference_output = out.str();
            result.matches_reference = true;
          } else {
            result.matches_reference = out.str() == reference_output;
          }
          deterministic = deterministic && result.matches_reference;
          all_ok = all_ok && summary.failed == 0;
          if (dedup) {
            memo_exact = memo_exact &&
                         summary.memo_hits == stream.stats.duplicates;
          }
          results.push_back(result);
        }
      }
    }

    std::cout << "gen stream: " << stream.stats.count << " requests ("
              << stream.stats.fresh << " fresh, " << stream.stats.duplicates
              << " duplicates; " << stream.stats.sweep << " stcl_sweep, "
              << stream.stats.ptrace << " ptrace, " << stream.stats.chained
              << " chained; seed " << seed << ", generated in "
              << format_double(gen_seconds, 3) << " s)\n";
    for (const ConfigResult& result : results) {
      std::cout << "  " << result.threads << " thread"
                << (result.threads == 1 ? " " : "s") << " "
                << (result.policy == dispatch::SchedulePolicy::kLjf ? "ljf "
                                                                    : "fifo")
                << " dedup " << (result.dedup ? "on " : "off") << ": "
                << format_double(result.makespan_s, 3) << " s ("
                << format_double(result.req_per_s, 1) << " req/s, memo hits "
                << result.memo_hits << ")"
                << (result.matches_reference ? "" : "  BYTES DIFFER") << '\n';
    }
    std::cout << "  deterministic: " << (deterministic ? "yes" : "NO")
              << ", memo exact: " << (memo_exact ? "yes" : "NO")
              << ", mix ok: " << (mix_ok ? "yes" : "NO") << '\n';

    if (!json_path.empty()) {
      JsonValue record = JsonValue::object();
      record.set("schema", JsonValue::string("thermo.bench_gen.v1"));
      record.set("count", JsonValue::number(n));
      record.set("seed", JsonValue::number(static_cast<double>(seed)));
      record.set("dup_rate", JsonValue::number(dup_rate));
      record.set("zipf_skew", JsonValue::number(zipf_skew));
      record.set("gen_seconds", JsonValue::number(gen_seconds));
      record.set("fresh",
                 JsonValue::number(static_cast<double>(stream.stats.fresh)));
      record.set("duplicates", JsonValue::number(static_cast<double>(
                                   stream.stats.duplicates)));
      record.set("sweep_share", JsonValue::number(sweep_share));
      record.set("ptrace_share", JsonValue::number(ptrace_share));
      record.set("chained_share", JsonValue::number(chained_share));
      JsonValue configs = JsonValue::array();
      for (const ConfigResult& result : results) {
        JsonValue entry = JsonValue::object();
        entry.set("threads",
                  JsonValue::number(static_cast<double>(result.threads)));
        entry.set("policy", JsonValue::string(
                                result.policy == dispatch::SchedulePolicy::kLjf
                                    ? "ljf"
                                    : "fifo"));
        entry.set("dedup", JsonValue::boolean(result.dedup));
        entry.set("makespan_s", JsonValue::number(result.makespan_s));
        entry.set("req_per_s", JsonValue::number(result.req_per_s));
        entry.set("memo_hits",
                  JsonValue::number(static_cast<double>(result.memo_hits)));
        configs.append(std::move(entry));
      }
      record.set("configs", std::move(configs));
      record.set("deterministic", JsonValue::boolean(deterministic));
      record.set("all_ok", JsonValue::boolean(all_ok));
      record.set("memo_exact", JsonValue::boolean(memo_exact));
      record.set("mix_ok", JsonValue::boolean(mix_ok));
      std::ofstream out(json_path);
      THERMO_REQUIRE(static_cast<bool>(out),
                     "cannot open --json path for writing");
      out << record.dump() << '\n';
      out.flush();
      THERMO_REQUIRE(out.good(), "failed writing '" + json_path + "'");
      std::cout << "wrote " << json_path << '\n';
    }

    if (!deterministic) {
      std::cerr << "error: outputs differ across threads/policy/dedup\n";
      return 1;
    }
    if (!all_ok) {
      std::cerr << "error: generated stream produced failing requests\n";
      return 1;
    }
    if (!memo_exact) {
      std::cerr << "error: dedup memo hits != generated duplicate count ("
                << stream.stats.duplicates << " expected)\n";
      return 1;
    }
    if (!mix_ok) {
      std::cerr << "error: measured dup/kind mix outside 0.05 of the "
                   "configured knobs\n";
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
