// Performance benchmarks (google-benchmark): the substrate costs behind
// the paper's "rapid generation" claim.
//
//  * steady-state solvers (Cholesky / LU / CG) across floorplan sizes;
//  * transient backward-Euler session simulation across floorplan sizes;
//  * STC evaluation (the paper's guide metric) vs a full session
//    simulation on the Alpha-like SoC: the gap is the simulation time
//    Algorithm 1 saves per considered candidate;
//  * end-to-end Algorithm 1 on the Alpha SoC.
#include <benchmark/benchmark.h>

#include "core/session_model.hpp"
#include "core/thermal_scheduler.hpp"
#include "floorplan/generator.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/steady_state.hpp"
#include "thermal/transient.hpp"

using namespace thermo;

namespace {

thermal::RCModel make_grid_model(std::size_t side) {
  const floorplan::Floorplan fp =
      floorplan::make_grid_floorplan(side, side, 0.016, 0.016);
  return thermal::RCModel(fp, thermal::PackageParams{});
}

std::vector<double> grid_power(std::size_t blocks) {
  std::vector<double> power(blocks, 0.0);
  for (std::size_t i = 0; i < blocks; i += 3) power[i] = 5.0;
  return power;
}

void BM_SteadyCholesky(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const thermal::RCModel model = make_grid_model(side);
  const auto power = grid_power(model.block_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        thermal::solve_steady_state(model, power,
                                    thermal::SteadySolver::kCholesky));
  }
  state.SetLabel(std::to_string(model.block_count()) + " blocks");
}
BENCHMARK(BM_SteadyCholesky)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_SteadyLu(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const thermal::RCModel model = make_grid_model(side);
  const auto power = grid_power(model.block_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        thermal::solve_steady_state(model, power, thermal::SteadySolver::kLu));
  }
  state.SetLabel(std::to_string(model.block_count()) + " blocks");
}
BENCHMARK(BM_SteadyLu)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_SteadyCg(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const thermal::RCModel model = make_grid_model(side);
  const auto power = grid_power(model.block_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(thermal::solve_steady_state(
        model, power, thermal::SteadySolver::kConjugateGradient));
  }
  state.SetLabel(std::to_string(model.block_count()) + " blocks");
}
BENCHMARK(BM_SteadyCg)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_TransientSession(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const thermal::RCModel model = make_grid_model(side);
  const auto power = grid_power(model.block_count());
  const auto initial = thermal::ambient_state(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        thermal::simulate_transient(model, power, 1.0, initial));
  }
  state.SetLabel(std::to_string(model.block_count()) + " blocks, 1 s");
}
BENCHMARK(BM_TransientSession)->Arg(2)->Arg(4)->Arg(8);

void BM_StcEvaluation(benchmark::State& state) {
  const core::SocSpec soc = soc::alpha_soc();
  core::SessionModelOptions options;
  options.stc_scale = soc::alpha_stc_scale();
  const core::SessionThermalModel model(soc.flp, soc.package, options);
  const std::vector<double> power = soc.test_powers();
  const std::vector<double> weight(soc.core_count(), 1.0);
  std::vector<bool> active(soc.core_count(), false);
  for (std::size_t i = 0; i < soc.core_count(); i += 2) active[i] = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.session_characteristic(active, power, weight));
  }
  state.SetLabel("alpha-15, 8 active");
}
BENCHMARK(BM_StcEvaluation);

void BM_FullSessionSimulation(benchmark::State& state) {
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  const std::vector<double> power = soc.test_powers();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.simulate_session(power, 1.0));
  }
  state.SetLabel("alpha-15, 1 s session");
}
BENCHMARK(BM_FullSessionSimulation);

void BM_Algorithm1EndToEnd(benchmark::State& state) {
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::ThermalSchedulerOptions options;
  options.temperature_limit = 155.0;
  options.stc_limit = static_cast<double>(state.range(0));
  options.model.stc_scale = soc::alpha_stc_scale();
  const core::ThermalAwareScheduler scheduler(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.generate(soc, analyzer));
  }
  state.SetLabel("TL=155, STCL=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Algorithm1EndToEnd)->Arg(20)->Arg(60)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
