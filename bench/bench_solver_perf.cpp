// Performance benchmarks: the substrate costs behind the paper's
// "rapid generation" claim.
//
// Two modes:
//
//  * `--quick [--json PATH]` — self-timed (std::chrono) measurement of
//    the factor cache and the scenario sweep, emitting the
//    machine-readable `BENCH_solver.json` perf-trajectory point:
//    per-size cold-vs-cached steady solves, cold-vs-cached transient
//    sessions, and sweep throughput with a 1-vs-N determinism check.
//    This mode has NO dependency on Google Benchmark, so CI can always
//    produce a trajectory artifact (see .github/workflows/ci.yml and
//    README "Reading BENCH_solver.json").
//
//  * default — the Google Benchmark micro-suite (only when the package
//    was found at configure time; otherwise the binary tells you to use
//    --quick):
//     - steady-state solvers (cold Cholesky / cached Cholesky / LU / CG)
//       across floorplan sizes;
//     - transient backward-Euler session simulation across sizes;
//     - STC evaluation (the paper's guide metric) vs a full session
//       simulation on the Alpha-like SoC: the gap is the simulation
//       time Algorithm 1 saves per considered candidate;
//     - end-to-end Algorithm 1 on the Alpha SoC.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/session_model.hpp"
#include "core/thermal_scheduler.hpp"
#include "floorplan/generator.hpp"
#include "linalg/cholesky.hpp"
#include "soc/alpha.hpp"
#include "sweep/scenario_sweep.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/solver_cache.hpp"
#include "thermal/steady_state.hpp"
#include "thermal/transient.hpp"

#ifdef THERMO_HAVE_BENCHMARK
#include <benchmark/benchmark.h>
#endif

using namespace thermo;

namespace {

thermal::RCModel make_grid_model(std::size_t side) {
  const floorplan::Floorplan fp =
      floorplan::make_grid_floorplan(side, side, 0.016, 0.016);
  return thermal::RCModel(fp, thermal::PackageParams{});
}

std::vector<double> grid_power(std::size_t blocks) {
  std::vector<double> power(blocks, 0.0);
  for (std::size_t i = 0; i < blocks; i += 3) power[i] = 5.0;
  return power;
}

// ---------------------------------------------------------------------------
// --quick mode: chrono-timed, benchmark-free, JSON-emitting.
// ---------------------------------------------------------------------------

/// Seconds per call of `fn`, measured over enough repetitions to
/// accumulate `min_time` seconds of work (at most `max_reps`).
template <typename Fn>
double seconds_per_call(Fn&& fn, double min_time = 0.05,
                        std::size_t max_reps = 1000) {
  using clock = std::chrono::steady_clock;
  std::size_t reps = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  while (reps < max_reps && elapsed < min_time) {
    fn();
    ++reps;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  }
  return elapsed / static_cast<double>(reps);
}

struct SteadyPoint {
  std::size_t side = 0, blocks = 0, nodes = 0;
  double cold_s = 0.0, cached_s = 0.0;
  double speedup() const { return cached_s > 0.0 ? cold_s / cached_s : 0.0; }
};

SteadyPoint measure_steady(std::size_t side) {
  const thermal::RCModel model = make_grid_model(side);
  const auto block_power = grid_power(model.block_count());
  const std::vector<double> power = model.expand_power(block_power);

  SteadyPoint point;
  point.side = side;
  point.blocks = model.block_count();
  point.nodes = model.node_count();

  // Cold: what every solve paid before the cache — factor + solve.
  point.cold_s = seconds_per_call([&] {
    const linalg::CholeskyFactor factor(model.conductance());
    volatile double sink = factor.solve(power)[0];
    (void)sink;
  });

  // Cached: the steady-state entry point, factor already in the cache
  // (primed by the first call).
  thermal::solve_steady_state(model, block_power);
  point.cached_s = seconds_per_call([&] {
    volatile double sink =
        thermal::solve_steady_state(model, block_power).rise[0];
    (void)sink;
  });
  return point;
}

struct TransientPoint {
  std::size_t side = 0, nodes = 0;
  double duration = 0.0, dt = 0.0;
  double cold_s = 0.0, cached_s = 0.0;
  double speedup() const { return cached_s > 0.0 ? cold_s / cached_s : 0.0; }
};

TransientPoint measure_transient(std::size_t side) {
  const thermal::RCModel model = make_grid_model(side);
  const auto power = grid_power(model.block_count());
  const auto initial = thermal::ambient_state(model);
  thermal::TransientOptions topt;
  topt.dt = 1e-3;

  TransientPoint point;
  point.side = side;
  point.nodes = model.node_count();
  // 50 full steps plus a fractional remainder — the representative case
  // (real test lengths are rarely exact dt multiples), so the cached
  // path also exercises the remainder-stepper slot.
  point.duration = 0.0505;
  point.dt = topt.dt;

  // Cold: every session factors (C/dt + G) afresh.
  point.cold_s = seconds_per_call(
      [&] {
        thermal::ThermalSolverCache::instance().invalidate(model);
        thermal::simulate_transient(model, power, point.duration, initial,
                                    topt);
      },
      0.05, 200);

  // Cached: the stepper factor is reused across sessions.
  thermal::simulate_transient(model, power, point.duration, initial, topt);
  point.cached_s = seconds_per_call(
      [&] {
        thermal::simulate_transient(model, power, point.duration, initial,
                                    topt);
      },
      0.05, 200);
  return point;
}

struct SweepPoint {
  std::size_t scenarios = 0, nodes = 0, threads = 0;
  double serial_s = 0.0, parallel_s = 0.0;
  bool deterministic = false;
  double scenarios_per_s() const {
    return parallel_s > 0.0 ? static_cast<double>(scenarios) / parallel_s : 0.0;
  }
};

// GCC 12's -Wrestrict misfires on the `"s" + std::to_string(i)` chain
// below once libstdc++'s basic_string insert is inlined (PR
// tree-optimization/105651): the reported 2^63-byte overlap cannot
// occur. Suppressed around this function only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
SweepPoint measure_sweep(std::size_t side, std::size_t scenario_count) {
  const thermal::RCModel model = make_grid_model(side);
  std::vector<sweep::PowerScenario> scenarios(scenario_count);
  for (std::size_t i = 0; i < scenario_count; ++i) {
    scenarios[i].name = "s" + std::to_string(i);
    scenarios[i].block_power.assign(model.block_count(), 0.0);
    // Vary the active set per scenario, as a schedule exploration would.
    for (std::size_t b = i % 3; b < model.block_count(); b += 2 + i % 4) {
      scenarios[i].block_power[b] = 3.0 + 0.5 * static_cast<double>(i % 5);
    }
  }

  sweep::SweepOptions serial_options;
  serial_options.threads = 1;
  const sweep::ScenarioSweep serial(serial_options);
  const sweep::ScenarioSweep parallel{};  // hardware concurrency

  SweepPoint point;
  point.scenarios = scenario_count;
  point.nodes = model.node_count();
  point.threads = parallel.thread_count();

  // Warm the factor cache before timing either run: the comparison is
  // serial-vs-parallel back-substitution throughput, and the one-time
  // factorization would otherwise be charged only to the serial run.
  thermal::ThermalSolverCache::instance().cholesky(model);

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto serial_outcomes = serial.run(model, scenarios);
  const auto t1 = clock::now();
  const auto parallel_outcomes = parallel.run(model, scenarios);
  const auto t2 = clock::now();
  point.serial_s = std::chrono::duration<double>(t1 - t0).count();
  point.parallel_s = std::chrono::duration<double>(t2 - t1).count();

  // Deterministic = the two runs produced EQUAL outcomes (including any
  // identically-failing scenario) — a shared failure is not
  // nondeterminism, a diverging one is.
  point.deterministic = serial_outcomes.size() == parallel_outcomes.size();
  for (std::size_t i = 0; point.deterministic && i < serial_outcomes.size();
       ++i) {
    const sweep::ScenarioOutcome& s = serial_outcomes[i];
    const sweep::ScenarioOutcome& p = parallel_outcomes[i];
    point.deterministic =
        s.ok == p.ok && s.error == p.error && s.block_peak == p.block_peak;
  }
  return point;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void write_json(const std::string& path, const std::vector<SteadyPoint>& steady,
                const std::vector<TransientPoint>& transient,
                const SweepPoint& sweep_point) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
  out.precision(6);
  out << "{\n";
  out << "  \"schema\": \"thermo.bench_solver.v1\",\n";
  out << "  \"bench\": \"bench_solver_perf\",\n";
  out << "  \"mode\": \"quick\",\n";
  out << "  \"steady\": [\n";
  for (std::size_t i = 0; i < steady.size(); ++i) {
    const SteadyPoint& p = steady[i];
    out << "    {\"side\": " << p.side << ", \"blocks\": " << p.blocks
        << ", \"nodes\": " << p.nodes << ", \"cold_solve_s\": " << p.cold_s
        << ", \"cached_solve_s\": " << p.cached_s
        << ", \"speedup\": " << p.speedup() << "}"
        << (i + 1 < steady.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"transient\": [\n";
  for (std::size_t i = 0; i < transient.size(); ++i) {
    const TransientPoint& p = transient[i];
    out << "    {\"side\": " << p.side << ", \"nodes\": " << p.nodes
        << ", \"duration_s\": " << p.duration << ", \"dt_s\": " << p.dt
        << ", \"cold_session_s\": " << p.cold_s
        << ", \"cached_session_s\": " << p.cached_s
        << ", \"speedup\": " << p.speedup() << "}"
        << (i + 1 < transient.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"sweep\": {\"scenarios\": " << sweep_point.scenarios
      << ", \"nodes\": " << sweep_point.nodes
      << ", \"threads\": " << sweep_point.threads
      << ", \"serial_s\": " << sweep_point.serial_s
      << ", \"parallel_s\": " << sweep_point.parallel_s
      << ", \"scenarios_per_s\": " << sweep_point.scenarios_per_s()
      << ", \"deterministic\": "
      << (sweep_point.deterministic ? "true" : "false") << "}\n";
  out << "}\n";
}

int run_quick(const std::string& json_path) {
  std::cout << "bench_solver_perf --quick (factor cache + sweep)\n";

  std::vector<SteadyPoint> steady;
  for (std::size_t side : {8u, 16u, 24u}) {  // 74 / 266 / 586 nodes
    steady.push_back(measure_steady(side));
    const SteadyPoint& p = steady.back();
    std::cout << "steady  " << p.nodes << " nodes: cold " << p.cold_s
              << " s, cached " << p.cached_s << " s, speedup " << p.speedup()
              << "x\n";
  }

  std::vector<TransientPoint> transient;
  for (std::size_t side : {8u, 16u}) {
    transient.push_back(measure_transient(side));
    const TransientPoint& p = transient.back();
    std::cout << "transient " << p.nodes << " nodes, " << p.duration
              << " s session: cold " << p.cold_s << " s, cached " << p.cached_s
              << " s, speedup " << p.speedup() << "x\n";
  }

  const SweepPoint sweep_point = measure_sweep(16, 64);
  std::cout << "sweep   " << sweep_point.scenarios << " scenarios on "
            << sweep_point.nodes << " nodes: serial " << sweep_point.serial_s
            << " s, " << sweep_point.threads << " threads "
            << sweep_point.parallel_s << " s, "
            << sweep_point.scenarios_per_s() << " scenarios/s, deterministic "
            << (sweep_point.deterministic ? "yes" : "NO") << "\n";

  write_json(json_path, steady, transient, sweep_point);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Google Benchmark micro-suite (optional dependency).
// ---------------------------------------------------------------------------

#ifdef THERMO_HAVE_BENCHMARK
namespace {

// The cold path: factor + solve per call, what solve_steady_state cost
// before the factor cache.
void BM_SteadyCholeskyCold(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const thermal::RCModel model = make_grid_model(side);
  const auto power = model.expand_power(grid_power(model.block_count()));
  for (auto _ : state) {
    const linalg::CholeskyFactor factor(model.conductance());
    benchmark::DoNotOptimize(factor.solve(power));
  }
  state.SetLabel(std::to_string(model.block_count()) + " blocks");
}
BENCHMARK(BM_SteadyCholeskyCold)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

// The cached path (the entry point the scheduler uses).
void BM_SteadyCholesky(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const thermal::RCModel model = make_grid_model(side);
  const auto power = grid_power(model.block_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        thermal::solve_steady_state(model, power,
                                    thermal::SteadySolver::kCholesky));
  }
  state.SetLabel(std::to_string(model.block_count()) + " blocks");
}
BENCHMARK(BM_SteadyCholesky)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_SteadyLu(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const thermal::RCModel model = make_grid_model(side);
  const auto power = grid_power(model.block_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        thermal::solve_steady_state(model, power, thermal::SteadySolver::kLu));
  }
  state.SetLabel(std::to_string(model.block_count()) + " blocks");
}
BENCHMARK(BM_SteadyLu)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_SteadyCg(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const thermal::RCModel model = make_grid_model(side);
  const auto power = grid_power(model.block_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(thermal::solve_steady_state(
        model, power, thermal::SteadySolver::kConjugateGradient));
  }
  state.SetLabel(std::to_string(model.block_count()) + " blocks");
}
BENCHMARK(BM_SteadyCg)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_TransientSession(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const thermal::RCModel model = make_grid_model(side);
  const auto power = grid_power(model.block_count());
  const auto initial = thermal::ambient_state(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        thermal::simulate_transient(model, power, 1.0, initial));
  }
  state.SetLabel(std::to_string(model.block_count()) + " blocks, 1 s");
}
BENCHMARK(BM_TransientSession)->Arg(2)->Arg(4)->Arg(8);

void BM_ScenarioSweep(benchmark::State& state) {
  const thermal::RCModel model = make_grid_model(12);
  std::vector<sweep::PowerScenario> scenarios(64);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    scenarios[i].block_power.assign(model.block_count(), 0.0);
    for (std::size_t b = i % 3; b < model.block_count(); b += 2 + i % 4) {
      scenarios[i].block_power[b] = 3.0;
    }
  }
  sweep::SweepOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  const sweep::ScenarioSweep sweeper(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweeper.run(model, scenarios));
  }
  state.SetLabel("64 scenarios, " + std::to_string(state.range(0)) +
                 " threads");
}
BENCHMARK(BM_ScenarioSweep)->Arg(1)->Arg(2)->Arg(4);

void BM_StcEvaluation(benchmark::State& state) {
  const core::SocSpec soc = soc::alpha_soc();
  core::SessionModelOptions options;
  options.stc_scale = soc::alpha_stc_scale();
  const core::SessionThermalModel model(soc.flp, soc.package, options);
  const std::vector<double> power = soc.test_powers();
  const std::vector<double> weight(soc.core_count(), 1.0);
  std::vector<bool> active(soc.core_count(), false);
  for (std::size_t i = 0; i < soc.core_count(); i += 2) active[i] = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.session_characteristic(active, power, weight));
  }
  state.SetLabel("alpha-15, 8 active");
}
BENCHMARK(BM_StcEvaluation);

void BM_FullSessionSimulation(benchmark::State& state) {
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  const std::vector<double> power = soc.test_powers();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.simulate_session(power, 1.0));
  }
  state.SetLabel("alpha-15, 1 s session");
}
BENCHMARK(BM_FullSessionSimulation);

void BM_Algorithm1EndToEnd(benchmark::State& state) {
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::ThermalSchedulerOptions options;
  options.temperature_limit = 155.0;
  options.stc_limit = static_cast<double>(state.range(0));
  options.model.stc_scale = soc::alpha_stc_scale();
  const core::ThermalAwareScheduler scheduler(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.generate(soc, analyzer));
  }
  state.SetLabel("TL=155, STCL=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Algorithm1EndToEnd)->Arg(20)->Arg(60)->Arg(100);

}  // namespace
#endif  // THERMO_HAVE_BENCHMARK

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_solver.json";
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  if (quick) {
    try {
      return run_quick(json_path);
    } catch (const std::exception& e) {
      std::cerr << "bench_solver_perf: " << e.what() << "\n";
      return 1;
    }
  }

#ifdef THERMO_HAVE_BENCHMARK
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::cerr << "bench_solver_perf: built without Google Benchmark; the\n"
               "micro-suite is unavailable. Run with --quick [--json PATH]\n"
               "for the self-timed JSON measurement instead.\n";
  return 2;
#endif
}
