// Ablation A: the weight-adaptation factor of Algorithm 1.
//
// On a thermal violation the paper multiplies the violating cores'
// weights by 1.1 (line 20), steering them away from busy sessions in
// later attempts. This bench sweeps the factor:
//  * 1.0 disables adaptation - the same violating session is rebuilt
//    forever, so generation cannot converge whenever the first
//    STC-feasible packing is too hot (reported as DNF);
//  * moderate factors (1.05..1.25) trade a few extra attempts for short
//    schedules;
//  * aggressive factors (>= 1.5) converge fast but over-serialise hot
//    cores, lengthening the schedule.
#include <iostream>

#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main() {
  std::cout << "=== Ablation A: weight factor of Algorithm 1 ===\n\n";
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);

  Table table({"weight factor", "TL [C]", "STCL", "length [s]", "effort [s]",
               "discards", "max temp [C]"});
  for (double tl : {145.0, 165.0}) {
    for (double factor : {1.0, 1.05, 1.1, 1.25, 1.5, 2.0}) {
      core::ThermalSchedulerOptions options;
      options.temperature_limit = tl;
      options.stc_limit = 70.0;
      options.weight_factor = factor;
      options.max_attempts = 500;  // make non-convergence visible quickly
      options.model.stc_scale = soc::alpha_stc_scale();
      const core::ThermalAwareScheduler scheduler(options);
      try {
        const core::ScheduleResult result = scheduler.generate(soc, analyzer);
        table.add_row({format_double(factor, 2), format_double(tl, 0), "70",
                       format_double(result.schedule_length, 0),
                       format_double(result.simulation_effort, 0),
                       std::to_string(result.discarded_sessions),
                       format_double(result.max_temperature, 2)});
      } catch (const LogicError&) {
        table.add_row({format_double(factor, 2), format_double(tl, 0), "70",
                       "DNF", "> 500 attempts", "-", "-"});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\npaper choice: 1.1 (line 20 of Algorithm 1).\n";
  return 0;
}
