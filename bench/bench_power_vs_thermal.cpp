// Ablation C: power-constrained baseline vs thermal-aware scheduling on
// the Alpha-like SoC (the system-level comparison behind the paper's
// Section 1 argument).
//
// For a sweep of chip-level power budgets, the baseline packs sessions
// greedily under the budget and we then *check* the result thermally at
// TL = 155 C. For the thermal-aware scheduler we sweep STCL at the same
// TL. Expected shape: to become thermally safe, the power baseline must
// shrink its budget until concurrency (and schedule length) is far worse
// than what the thermal-aware scheduler achieves, because the budget has
// to be provisioned for the *densest* cores.
#include <iostream>

#include "core/power_scheduler.hpp"
#include "core/safety_checker.hpp"
#include "core/thermal_scheduler.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace thermo;

int main() {
  constexpr double kTl = 155.0;
  std::cout << "=== Power-constrained vs thermal-aware (TL = " << kTl
            << " C) ===\n\n";
  const core::SocSpec soc = soc::alpha_soc();
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  const core::SafetyChecker checker(kTl);

  double total_power = 0.0;
  for (const auto& test : soc.tests) total_power += test.power;
  std::cout << "total SoC test power: " << format_double(total_power, 0)
            << " W\n\n";

  Table power_table({"power budget [W]", "sessions", "length [s]",
                     "max temp [C]", "violations", "thermally safe"});
  for (double budget : {60.0, 80.0, 100.0, 120.0, 160.0, 200.0, 280.0}) {
    core::PowerSchedulerOptions options;
    options.power_limit = budget;
    const core::PowerConstrainedScheduler scheduler(options);
    const core::ScheduleResult result = scheduler.generate(soc, &analyzer);
    const core::SafetyReport report =
        checker.check(soc, result.schedule, analyzer);
    power_table.add_row({format_double(budget, 0),
                         std::to_string(result.schedule.session_count()),
                         format_double(result.schedule_length, 0),
                         format_double(report.max_temperature, 1),
                         std::to_string(report.violations.size()),
                         report.safe ? "yes" : "NO"});
  }
  std::cout << "power-constrained baseline (checked at TL = " << kTl
            << " C):\n";
  power_table.print(std::cout);

  Table thermal_table(
      {"STCL", "sessions", "length [s]", "max temp [C]", "effort [s]"});
  for (double stcl : {20.0, 40.0, 60.0, 80.0, 100.0}) {
    core::ThermalSchedulerOptions options;
    options.temperature_limit = kTl;
    options.stc_limit = stcl;
    options.model.stc_scale = soc::alpha_stc_scale();
    const core::ThermalAwareScheduler scheduler(options);
    const core::ScheduleResult result = scheduler.generate(soc, analyzer);
    thermal_table.add_row({format_double(stcl, 0),
                           std::to_string(result.schedule.session_count()),
                           format_double(result.schedule_length, 0),
                           format_double(result.max_temperature, 1),
                           format_double(result.simulation_effort, 0)});
  }
  std::cout << "\nthermal-aware scheduler (always safe by construction):\n";
  thermal_table.print(std::cout);
  return 0;
}
