#!/usr/bin/env python3
"""Structural validator for `thermosched serve --trace` output.

Checks that a Chrome/Perfetto traceEvents JSON file (the format
src/obs/trace.cpp exports — docs/OBSERVABILITY.md "Trace format") is
well formed:

1. The document parses as JSON with a ``traceEvents`` array and an
   ``otherData.dropped_events`` count.
2. Every event carries name/cat/ph/ts/pid/tid; ``ph`` is one of
   ``B``/``E``/``i``; ``ts`` is a non-negative number.
3. Per thread (``tid``), timestamps are non-decreasing — the recorder
   uses one monotonic clock, so out-of-order events mean a broken ring.
4. Per thread, ``B``/``E`` events are stack-balanced with matching
   names: every ``E`` closes the most recent open ``B`` of the same
   name, and nothing is left open at end of stream (the exporter
   synthesizes closing ``E`` events for spans still open at snapshot).

Usage: check_trace.py TRACE.json [--min-events N]

Stdlib only (CI runs it with a bare python3). Exit 0 = valid trace,
1 = violation (first offending event reported), 2 = usage error.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

PHASES = {"B", "E", "i"}
REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")


def fail(message: str) -> None:
    print(f"check_trace: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="traceEvents JSON file")
    parser.add_argument(
        "--min-events", type=int, default=1,
        help="require at least this many events (default 1)")
    args = parser.parse_args()

    try:
        document = json.loads(args.trace.read_text())
    except OSError as error:
        fail(f"cannot read {args.trace}: {error}")
    except json.JSONDecodeError as error:
        fail(f"{args.trace} is not valid JSON: {error}")

    events = document.get("traceEvents")
    if not isinstance(events, list):
        fail("missing or non-array traceEvents")
    dropped = document.get("otherData", {}).get("dropped_events")
    if not isinstance(dropped, int) or dropped < 0:
        fail("otherData.dropped_events missing or not a non-negative int")

    last_ts: dict[int, float] = {}
    open_spans: dict[int, list[str]] = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        for key in REQUIRED_KEYS:
            if key not in event:
                fail(f"{where}: missing key '{key}'")
        name, phase, ts, tid = (event["name"], event["ph"], event["ts"],
                                event["tid"])
        if not isinstance(name, str) or not name:
            fail(f"{where}: empty or non-string name")
        if phase not in PHASES:
            fail(f"{where}: phase '{phase}' is not one of B/E/i")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: ts {ts!r} is not a non-negative number")
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"{where}: ts {ts} < previous ts {last_ts[tid]} on tid "
                 f"{tid} — per-thread timestamps must be non-decreasing")
        last_ts[tid] = ts

        stack = open_spans.setdefault(tid, [])
        if phase == "B":
            stack.append(name)
        elif phase == "E":
            if not stack:
                fail(f"{where}: 'E' for '{name}' on tid {tid} with no "
                     f"open span")
            top = stack.pop()
            if top != name:
                fail(f"{where}: 'E' for '{name}' on tid {tid} but the "
                     f"innermost open span is '{top}'")

    for tid, stack in sorted(open_spans.items()):
        if stack:
            fail(f"tid {tid}: {len(stack)} span(s) left open at end of "
                 f"stream (innermost '{stack[-1]}') — the exporter must "
                 f"synthesize closing events")

    if len(events) < args.min_events:
        fail(f"only {len(events)} events, expected >= {args.min_events}")

    spans = sum(1 for e in events if e["ph"] == "B")
    threads = len({e["tid"] for e in events})
    print(f"check_trace: OK — {len(events)} events ({spans} spans) on "
          f"{threads} thread(s), {dropped} dropped")


if __name__ == "__main__":
    main()
