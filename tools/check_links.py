#!/usr/bin/env python3
"""Markdown link checker: fail the build when docs rot.

Validates, in README.md and docs/*.md:

1. Relative markdown links ``[text](path)`` — the target file or
   directory must exist (``#anchor`` suffixes are stripped; absolute
   URLs and ``mailto:`` are skipped).
2. Code references in inline code spans that look like repo paths,
   e.g. ``src/scenario/request.hpp`` or ``src/util/json.cpp:42`` — the
   path must exist, and when a ``:line`` is given it must not exceed the
   file's line count. Only spans rooted at a known top-level directory
   are checked, so shell examples like ``build/apps/thermosched`` (build
   outputs) are ignored.

Stdlib only (CI runs it with a bare python3). Exit 0 = clean, 1 = rot.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Directories a checked code span may be rooted at. build/ is absent on
# purpose: generated binaries do not exist in a fresh checkout.
CODE_ROOTS = ("src", "docs", "examples", "tests", "bench", "apps", "cmake",
              "tools")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\n]+)`")
CODE_PATH = re.compile(
    r"^(?:" + "|".join(CODE_ROOTS) + r")(?:/[A-Za-z0-9_.-]+)*"
    r"(?::(\d+))?$")


def checked_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_md_links(path: Path, text: str, errors: list[str]) -> None:
    for match in MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO)}: broken link "
                          f"[...]({target}) -> {relative}")


def check_code_refs(path: Path, text: str, errors: list[str]) -> None:
    for match in CODE_SPAN.finditer(text):
        span = match.group(1)
        ref = CODE_PATH.match(span)
        if not ref:
            continue
        file_part = span.split(":", 1)[0]
        resolved = REPO / file_part
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO)}: code reference "
                          f"`{span}` -> {file_part} does not exist")
            continue
        if ref.group(1) is not None:
            if not resolved.is_file():
                errors.append(f"{path.relative_to(REPO)}: code reference "
                              f"`{span}` gives a line number on a directory")
                continue
            line = int(ref.group(1))
            count = len(resolved.read_text(encoding="utf-8",
                                           errors="replace").splitlines())
            if line < 1 or line > count:
                errors.append(f"{path.relative_to(REPO)}: code reference "
                              f"`{span}` points past the end of {file_part} "
                              f"({count} lines)")


def main() -> int:
    errors: list[str] = []
    files = checked_files()
    for path in files:
        # Fenced code blocks are example input/output, not prose with
        # references — drop them before scanning.
        text = re.sub(r"```.*?```", "", path.read_text(encoding="utf-8"),
                      flags=re.DOTALL)
        check_md_links(path, text, errors)
        check_code_refs(path, text, errors)
    if errors:
        print(f"check_links: {len(errors)} broken reference(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"check_links: OK ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
