// thermosched: command-line front end for the ThermoSched library.
//
//   thermosched schedule [--flp chip.flp --density 1e6 | --alpha]
//                        [--tl 155] [--stcl 50] [--csv]
//   thermosched simulate --cores Icache,Dcache [--flp ... --density ...]
//   thermosched info     [--flp chip.flp | --alpha]
//
// `schedule` runs Algorithm 1 and prints the thermal-safe schedule;
// `simulate` runs one session through the RC oracle and prints per-core
// peaks plus an ASCII thermal map; `info` prints floorplan statistics
// (areas, adjacency, boundary exposure, power densities).
#include <iostream>

#include "core/thermal_scheduler.hpp"
#include "floorplan/flp_io.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/heatmap.hpp"

using namespace thermo;

namespace {

struct CommonArgs {
  std::string flp_path;
  double density = 1.0e6;
  bool alpha = false;
  double tl = 155.0;
  double stcl = 50.0;
  double stc_scale = 0.0;  // 0 = auto
  std::string cores;
  bool csv = false;
};

core::SocSpec build_soc(const CommonArgs& args) {
  if (args.alpha || args.flp_path.empty()) {
    return soc::alpha_soc();
  }
  core::SocSpec soc;
  soc.flp = floorplan::load_flp(args.flp_path);
  soc.name = soc.flp.name();
  soc.package = thermal::PackageParams{};
  for (std::size_t i = 0; i < soc.flp.size(); ++i) {
    soc.tests.push_back(
        core::CoreTest{args.density * soc.flp.block(i).area(), 1.0});
  }
  soc.validate();
  return soc;
}

double stc_scale_for(const CommonArgs& args) {
  if (args.stc_scale > 0.0) return args.stc_scale;
  return args.alpha || args.flp_path.empty() ? soc::alpha_stc_scale() : 2.8e-3;
}

int cmd_schedule(const CommonArgs& args) {
  const core::SocSpec soc = build_soc(args);
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::ThermalSchedulerOptions options;
  options.temperature_limit = args.tl;
  options.stc_limit = args.stcl;
  options.model.stc_scale = stc_scale_for(args);
  options.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
  const core::ThermalAwareScheduler scheduler(options);
  const core::ScheduleResult result = scheduler.generate(soc, analyzer);

  for (const std::string& note : result.notes) std::cerr << "note: " << note << '\n';
  Table table({"session", "cores", "length [s]", "max temp [C]"});
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    table.add_row({"TS" + std::to_string(i + 1),
                   result.outcomes[i].session.to_string(soc),
                   format_double(result.outcomes[i].length, 2),
                   format_double(result.outcomes[i].max_temperature, 2)});
  }
  if (args.csv) table.print_csv(std::cout);
  else table.print(std::cout);
  std::cout << "length=" << result.schedule_length
            << "s effort=" << result.simulation_effort
            << "s max=" << format_double(result.max_temperature, 2)
            << "C (TL " << scheduler.effective_temperature_limit() << "C)\n";
  return 0;
}

int cmd_simulate(const CommonArgs& args) {
  if (args.cores.empty()) {
    throw InvalidArgument("simulate requires --cores a,b,c");
  }
  const core::SocSpec soc = build_soc(args);
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::TestSession session;
  for (const std::string& raw : split(args.cores, ',')) {
    const std::string name{trim(raw)};
    const auto index = soc.flp.index_of(name);
    if (!index) throw InvalidArgument("no core named '" + name + "'");
    session.cores.push_back(*index);
  }
  const thermal::SessionSimulation sim =
      analyzer.simulate_session(session.power_map(soc), session.length(soc));

  Table table({"core", "power [W]", "peak temp [C]"});
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    table.add_row({soc.flp.block(i).name,
                   format_double(session.contains(i) ? soc.tests[i].power : 0.0, 1),
                   format_double(sim.peak_temperature[i], 2)});
  }
  if (args.csv) table.print_csv(std::cout);
  else table.print(std::cout);
  std::cout << "\nmax " << format_double(sim.max_temperature, 2) << " C in '"
            << soc.flp.block(sim.hottest_block).name << "'\n\n"
            << viz::ascii_block_map(soc.flp, sim.peak_temperature, 56);
  return 0;
}

int cmd_info(const CommonArgs& args) {
  const core::SocSpec soc = build_soc(args);
  std::cout << "SoC '" << soc.name << "': " << soc.core_count()
            << " cores, die " << soc.flp.chip_width() * 1e3 << " x "
            << soc.flp.chip_height() * 1e3 << " mm, coverage "
            << format_double(soc.flp.validate().coverage * 100.0, 1) << "%\n";
  Table table({"core", "area [mm2]", "test power [W]",
               "density [W/mm2]", "neighbours", "boundary [mm]"});
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    table.add_row({soc.flp.block(i).name,
                   format_double(soc.flp.block(i).area() * 1e6, 2),
                   format_double(soc.tests[i].power, 1),
                   format_double(soc.power_density(i) * 1e-6, 2),
                   std::to_string(soc.flp.neighbours(i).size()),
                   format_double(soc.flp.boundary_exposure(i) * 1e3, 1)});
  }
  if (args.csv) table.print_csv(std::cout);
  else table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: thermosched <schedule|simulate|info> [options]\n"
                 "       thermosched <command> --help\n";
    return 1;
  }
  const std::string command = argv[1];

  CommonArgs args;
  CliParser cli("thermosched " + command, "Thermal-safe SoC test scheduling");
  cli.add_string("flp", "HotSpot .flp floorplan file", &args.flp_path);
  cli.add_double("density", "Uniform test power density for --flp [W/m^2]",
                 &args.density);
  bool alpha_flag = false;
  cli.add_flag("alpha", "Use the bundled Alpha-15 SoC", &alpha_flag);
  cli.add_double("tl", "Temperature limit TL [deg C]", &args.tl);
  cli.add_double("stcl", "Session thermal characteristic limit", &args.stcl);
  cli.add_double("stc-scale", "STC normalisation (0 = auto)", &args.stc_scale);
  cli.add_string("cores", "Comma-separated cores (simulate)", &args.cores);
  cli.add_flag("csv", "CSV output", &args.csv);

  try {
    if (!cli.parse(argc - 1, argv + 1)) return 0;
    args.alpha = alpha_flag;
    if (command == "schedule") return cmd_schedule(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "info") return cmd_info(args);
    std::cerr << "unknown command '" << command << "'\n";
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
