// thermosched: command-line front end for the ThermoSched library.
//
// Subcommands (run `thermosched <command> --help` for that command's
// option list):
//
//   schedule  Run Algorithm 1 and print the thermal-safe schedule.
//             Options: --flp PATH --density D | --alpha, --tl, --stcl,
//             --stc-scale, --csv
//   simulate  Run one test session through the RC oracle; print per-core
//             peaks and an ASCII thermal map.
//             Options: --cores a,b,c (required), --flp/--density |
//             --alpha, --csv
//   sweep     Run Algorithm 1 once per STCL value in a range, fanned
//             across a thread pool that shares the model's cached
//             factorizations (src/sweep).
//             Options: --stcl-min, --stcl-max, --step, --threads,
//             --flp/--density | --alpha, --tl, --stc-scale, --csv
//   serve     Stream JSONL scenario requests through the scenario
//             runner (src/scenario), executed by the dispatch engine
//             (src/dispatch): cost-aware placement, duplicate-request
//             memoization, streaming ordered output. Emits one JSONL
//             result record per request; byte-deterministic for any
//             thread count, schedule policy, and dedup setting.
//             Schema: docs/SERVE.md.
//             Options: --in PATH|-, --out PATH|-, --threads,
//             --schedule-policy fifo|ljf|edf|priority|srpt,
//             --dedup on|off, --calibrate on|off,
//             --summary-json PATH, --cache-dir PATH (persistent
//             disk-backed result cache — docs/PERSIST.md),
//             --trace PATH, --metrics-json PATH, --metrics
//             (observability artifacts — docs/OBSERVABILITY.md)
//   cache     Inspect or maintain a --cache-dir directory:
//             `cache stats` prints store statistics, `cache verify`
//             re-checksums every record (exit 1 when damage is found),
//             `cache compact` rewrites live records into one segment.
//             Options: --cache-dir PATH (required)
//   gen       Emit a deterministic JSONL request stream for serve
//             (src/gen): Zipf-skewed sizes spanning the dense/sparse
//             crossover, tunable duplication rate, request-kind mix
//             (stcl_sweep / ptrace / chained), arrival-order pattern.
//             Identical flags always produce byte-identical streams.
//             Schema: docs/GEN.md.
//             Options: --count, --seed, --zipf, --dup, --order,
//             --mix-sweep, --mix-ptrace, --mix-chained, --mix-grid,
//             --deadline-rate, --out PATH|-
//   info      Print floorplan statistics (areas, adjacency, boundary
//             exposure, power densities).
//             Options: --flp PATH --density D | --alpha, --csv
//
// Exit codes:
//   0  success (including --help)
//   1  runtime error: unreadable/malformed input file, scheduler or
//      solver failure — the message is printed to stderr as "error: ..."
//   2  usage error: unknown command, unknown flag, malformed flag value
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/stcl_sweep.hpp"
#include "core/thermal_scheduler.hpp"
#include "dispatch/calibrator.hpp"
#include "dispatch/disk_result_memo.hpp"
#include "dispatch/work_queue.hpp"
#include "persist/blob_file.hpp"
#include "persist/segment_store.hpp"
#include "floorplan/flp_io.hpp"
#include "gen/generator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/serve.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/backend.hpp"
#include "thermal/solver_cache.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/heatmap.hpp"

using namespace thermo;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntimeError = 1;
constexpr int kExitUsageError = 2;

struct CommonArgs {
  std::string flp_path;
  double density = 1.0e6;
  bool alpha = false;
  double tl = 155.0;
  double stcl = 50.0;
  double stc_scale = 0.0;  // 0 = auto
  std::string cores;
  bool csv = false;
  // sweep-only knobs
  double stcl_min = 20.0;
  double stcl_max = 100.0;
  double step = 10.0;
  long long threads = 0;  // 0 = hardware concurrency
  // serve-only knobs
  std::string in_path = "-";
  std::string out_path = "-";
  std::string schedule_policy = "fifo";
  std::string dedup = "on";
  std::string calibrate = "on";
  std::string summary_json_path;
  // serve observability artifacts (docs/OBSERVABILITY.md) — none of
  // these may change the results stream's bytes.
  std::string trace_path;         // --trace: Chrome traceEvents JSON
  std::string metrics_json_path;  // --metrics-json: registry snapshot
  bool metrics_table = false;     // --metrics: stderr metric table
  std::string cache_dir;  // serve + cache (docs/PERSIST.md)
  // schedule/sweep/serve: thermal solver backend (docs/SOLVERS.md)
  std::string solver_backend = "auto";
  // gen-only knobs (docs/GEN.md)
  long long gen_count = 1000;
  long long gen_seed = 1;
  double gen_zipf = 1.5;
  double gen_dup = 0.0;
  std::string gen_order = "shuffled";
  double gen_mix_sweep = 0.7;
  double gen_mix_ptrace = 0.15;
  double gen_mix_chained = 0.15;
  double gen_mix_grid = 0.0;
  double gen_deadline_rate = 0.0;
};

/// "dense" | "sparse" | "auto" -> SolverBackend; anything else is a
/// usage error (exit 2), matching the scenario layer's wording.
thermal::SolverBackend parse_solver_backend(const std::string& name) {
  const auto backend = thermal::solver_backend_from_name(name);
  if (!backend) {
    throw InvalidArgument("unknown solver backend '" + name +
                          "' (expected 'dense', 'sparse', or 'auto')");
  }
  return *backend;
}

/// Policy name -> SchedulePolicy; anything else is a usage error
/// (exit 2) with this exact message (pinned by the serve smoke docs).
dispatch::SchedulePolicy parse_schedule_policy(const std::string& name) {
  const auto policy = dispatch::schedule_policy_from_name(name);
  if (!policy) {
    throw InvalidArgument(
        "unknown schedule policy '" + name +
        "' (expected 'fifo', 'ljf', 'edf', 'priority', or 'srpt')");
  }
  return *policy;
}

/// Order-pattern name -> OrderPattern; anything else is a usage error
/// (exit 2).
gen::OrderPattern parse_order_pattern(const std::string& name) {
  const auto order = gen::order_pattern_from_name(name);
  if (!order) {
    throw InvalidArgument(
        "unknown order pattern '" + name +
        "' (expected 'as-generated', 'shuffled', 'sorted', 'sorted-desc', "
        "or 'whale-last')");
  }
  return *order;
}

/// "on" | "off" -> bool; anything else is a usage error (exit 2).
bool parse_dedup(const std::string& value) {
  if (value == "on") return true;
  if (value == "off") return false;
  throw InvalidArgument("invalid --dedup value '" + value +
                        "' (expected 'on' or 'off')");
}

/// "on" | "off" -> bool; anything else is a usage error (exit 2).
bool parse_calibrate(const std::string& value) {
  if (value == "on") return true;
  if (value == "off") return false;
  throw InvalidArgument("invalid --calibrate value '" + value +
                        "' (expected 'on' or 'off')");
}

/// JSON numbers in a metrics snapshot are exact integers (<= 2^53), so
/// a double round-trips losslessly into this decimal string.
std::string metric_value(const JsonValue& value) {
  return std::to_string(
      static_cast<unsigned long long>(value.as_number()));
}

/// `serve --metrics` / `cache stats`: the registry snapshot as tables.
/// Counters/gauges get metric|value rows; histograms get one row per
/// metric with count + latency quantiles. `prefix` filters by metric
/// name ("" = everything); rows with zero events are skipped so the
/// table shows what this process actually did.
void print_metrics_tables(std::ostream& out, const std::string& prefix) {
  const JsonValue snapshot = obs::MetricsRegistry::instance().to_json();
  Table scalars({"metric", "value"});
  std::size_t scalar_rows = 0;
  for (const char* section : {"counters", "gauges"}) {
    if (const JsonValue* group = snapshot.find(section)) {
      for (const auto& [name, value] : group->members()) {
        if (name.rfind(prefix, 0) != 0 || value.as_number() == 0.0) continue;
        scalars.add_row({name, metric_value(value)});
        ++scalar_rows;
      }
    }
  }
  Table latencies({"metric", "count", "p50 [ns]", "p95 [ns]", "p99 [ns]",
                   "max [ns]"});
  std::size_t latency_rows = 0;
  if (const JsonValue* group = snapshot.find("histograms")) {
    for (const auto& [name, h] : group->members()) {
      if (name.rfind(prefix, 0) != 0) continue;
      const JsonValue* count = h.find("count");
      if (count == nullptr || count->as_number() == 0.0) continue;
      latencies.add_row({name, metric_value(*count),
                         metric_value(*h.find("p50")),
                         metric_value(*h.find("p95")),
                         metric_value(*h.find("p99")),
                         metric_value(*h.find("max"))});
      ++latency_rows;
    }
  }
  if (scalar_rows > 0) scalars.print(out);
  if (latency_rows > 0) latencies.print(out);
  if (scalar_rows == 0 && latency_rows == 0) {
    out << "(no metrics recorded)\n";
  }
}

void print_global_usage(std::ostream& out) {
  out << "usage: thermosched <command> [options]\n"
         "\n"
         "commands:\n"
         "  schedule  Run Algorithm 1, print the thermal-safe schedule\n"
         "            [--flp PATH --density D | --alpha] [--tl C] [--stcl S]\n"
         "            [--stc-scale X] [--solver-backend B] [--csv]\n"
         "  simulate  Simulate one test session through the RC oracle\n"
         "            --cores a,b,c [--flp PATH --density D | --alpha] [--csv]\n"
         "  sweep     Algorithm 1 once per STCL value, across a thread pool\n"
         "            [--stcl-min S] [--stcl-max S] [--step S] [--threads N]\n"
         "            [--flp PATH --density D | --alpha] [--tl C]\n"
         "            [--stc-scale X] [--solver-backend B] [--csv]\n"
         "  serve     Stream JSONL scenario requests -> JSONL results\n"
         "            (schema: docs/SERVE.md; byte-deterministic for any\n"
         "            thread count, policy, and dedup setting)\n"
         "            [--in PATH|-] [--out PATH|-] [--threads N]\n"
         "            [--schedule-policy fifo|ljf|edf|priority|srpt]\n"
         "            [--dedup on|off] [--calibrate on|off]\n"
         "            [--summary-json PATH] [--solver-backend B]\n"
         "            [--cache-dir PATH] [--trace PATH]\n"
         "            [--metrics-json PATH] [--metrics]\n"
         "  cache     Inspect/maintain a --cache-dir result cache\n"
         "            (docs/PERSIST.md): stats | verify | compact\n"
         "            --cache-dir PATH\n"
         "  gen       Emit a deterministic JSONL request stream for serve\n"
         "            (byte-identical for identical flags; docs/GEN.md)\n"
         "            [--count N] [--seed S] [--zipf Z] [--dup R]\n"
         "            [--order as-generated|shuffled|sorted|sorted-desc|\n"
         "            whale-last] [--mix-sweep W] [--mix-ptrace W]\n"
         "            [--mix-chained W] [--mix-grid W] [--deadline-rate R]\n"
         "            [--out PATH|-]\n"
         "  info      Floorplan statistics\n"
         "            [--flp PATH --density D | --alpha] [--csv]\n"
         "\n"
         "`thermosched <command> --help` lists that command's options.\n"
         "\n"
         "--solver-backend picks the thermal factorization: 'dense',\n"
         "'sparse', or 'auto' (default; by node count — docs/SOLVERS.md).\n"
         "For serve it is the batch default; a request's explicit\n"
         "solver.backend field always wins.\n"
         "\n"
         "serve scheduling (docs/SERVE.md \"Scheduling policy\"):\n"
         "--schedule-policy orders execution starts — 'fifo' (default,\n"
         "input order), 'ljf' (longest-job-first; cuts makespan on\n"
         "skewed batches), 'edf' (earliest deadline_s first), 'priority'\n"
         "(smallest cost/priority ratio first), or 'srpt' (cheapest\n"
         "first). --dedup ('on' default) memoizes result records by\n"
         "request content so duplicate requests execute once.\n"
         "--calibrate ('on' default) fits the cost model's constants\n"
         "from measured wall times (docs/DISPATCH.md); with --cache-dir\n"
         "the fit persists across restarts. None of these change the\n"
         "output bytes.\n"
         "--summary-json writes per-batch execution stats (makespan,\n"
         "tail latency, memo hit rate, per-request timings) to PATH.\n"
         "--trace records per-thread spans for the batch and writes\n"
         "Chrome traceEvents JSON to PATH; --metrics-json writes the\n"
         "process-wide counter/histogram snapshot; --metrics prints it\n"
         "as stderr tables. Observability never changes the output\n"
         "bytes (docs/OBSERVABILITY.md).\n"
         "--cache-dir persists result records to a crash-safe on-disk\n"
         "store keyed by request content: a restarted server answers\n"
         "previously computed requests from disk without executing them\n"
         "(byte-identically; docs/PERSIST.md). Requires dedup on.\n"
         "`thermosched cache verify --cache-dir PATH` exits 1 when any\n"
         "record is damaged; undamaged records are unaffected.\n"
         "\n"
         "exit codes: 0 success; 1 runtime error (bad input file, scheduler\n"
         "failure, unwritable --out/--summary-json path); 2 usage error\n"
         "(unknown command/flag, malformed value — including an unknown\n"
         "--schedule-policy, --dedup, or --solver-backend value).\n";
}

core::SocSpec build_soc(const CommonArgs& args) {
  if (args.alpha || args.flp_path.empty()) {
    return soc::alpha_soc();
  }
  core::SocSpec soc;
  soc.flp = floorplan::load_flp(args.flp_path);
  soc.name = soc.flp.name();
  soc.package = thermal::PackageParams{};
  for (std::size_t i = 0; i < soc.flp.size(); ++i) {
    soc.tests.push_back(
        core::CoreTest{args.density * soc.flp.block(i).area(), 1.0});
  }
  soc.validate();
  return soc;
}

double stc_scale_for(const CommonArgs& args) {
  if (args.stc_scale > 0.0) return args.stc_scale;
  return args.alpha || args.flp_path.empty() ? soc::alpha_stc_scale() : 2.8e-3;
}

int cmd_schedule(const CommonArgs& args) {
  const core::SocSpec soc = build_soc(args);
  thermal::ThermalAnalyzer::Options analyzer_options;
  analyzer_options.backend = parse_solver_backend(args.solver_backend);
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package, analyzer_options);
  core::ThermalSchedulerOptions options;
  options.temperature_limit = args.tl;
  options.stc_limit = args.stcl;
  options.model.stc_scale = stc_scale_for(args);
  options.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
  const core::ThermalAwareScheduler scheduler(options);
  const core::ScheduleResult result = scheduler.generate(soc, analyzer);

  for (const std::string& note : result.notes) std::cerr << "note: " << note << '\n';
  Table table({"session", "cores", "length [s]", "max temp [C]"});
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    table.add_row({"TS" + std::to_string(i + 1),
                   result.outcomes[i].session.to_string(soc),
                   format_double(result.outcomes[i].length, 2),
                   format_double(result.outcomes[i].max_temperature, 2)});
  }
  if (args.csv) table.print_csv(std::cout);
  else table.print(std::cout);
  std::cout << "length=" << result.schedule_length
            << "s effort=" << result.simulation_effort
            << "s max=" << format_double(result.max_temperature, 2)
            << "C (TL " << scheduler.effective_temperature_limit() << "C)\n";
  return kExitOk;
}

int cmd_simulate(const CommonArgs& args) {
  if (args.cores.empty()) {
    throw InvalidArgument("simulate requires --cores a,b,c");
  }
  const core::SocSpec soc = build_soc(args);
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::TestSession session;
  for (const std::string& raw : split(args.cores, ',')) {
    const std::string name{trim(raw)};
    const auto index = soc.flp.index_of(name);
    if (!index) throw InvalidArgument("no core named '" + name + "'");
    session.cores.push_back(*index);
  }
  const thermal::SessionSimulation sim =
      analyzer.simulate_session(session.power_map(soc), session.length(soc));

  Table table({"core", "power [W]", "peak temp [C]"});
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    table.add_row({soc.flp.block(i).name,
                   format_double(session.contains(i) ? soc.tests[i].power : 0.0, 1),
                   format_double(sim.peak_temperature[i], 2)});
  }
  if (args.csv) table.print_csv(std::cout);
  else table.print(std::cout);
  std::cout << "\nmax " << format_double(sim.max_temperature, 2) << " C in '"
            << soc.flp.block(sim.hottest_block).name << "'\n\n"
            << viz::ascii_block_map(soc.flp, sim.peak_temperature, 56);
  return kExitOk;
}

int cmd_sweep(const CommonArgs& args) {
  const std::vector<double> stcls =
      core::stcl_range(args.stcl_min, args.stcl_max, args.step);
  const core::SocSpec soc = build_soc(args);
  // One shared model: every per-STCL analyzer keys the same cached
  // factorizations, so the RC network is factored once for the whole
  // sweep no matter how many threads run.
  const auto model =
      std::make_shared<const thermal::RCModel>(soc.flp, soc.package);

  core::StclSweepConfig config;
  config.threads = static_cast<std::size_t>(std::max(0LL, args.threads));
  config.analyzer.backend = parse_solver_backend(args.solver_backend);
  config.scheduler.temperature_limit = args.tl;
  config.scheduler.model.stc_scale = stc_scale_for(args);
  config.scheduler.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
  const std::vector<core::StclSweepPoint> points =
      core::sweep_stcl(soc, model, stcls, config);

  Table table({"STCL", "length [s]", "effort [s]", "sessions", "max temp [C]",
               "discards"});
  for (const core::StclSweepPoint& point : points) {
    table.add_row({format_double(point.stcl, 0),
                   format_double(point.schedule_length, 1),
                   format_double(point.simulation_effort, 1),
                   std::to_string(point.sessions),
                   format_double(point.max_temperature, 2),
                   std::to_string(point.discarded_sessions)});
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  // Under kRaiseLimit the scheduler may enforce a higher TL than asked
  // for; report it like cmd_schedule does or the table rows would
  // appear to violate the printed limit.
  double effective_tl = args.tl;
  for (const core::StclSweepPoint& point : points) {
    effective_tl = std::max(effective_tl, point.effective_temperature_limit);
  }
  const auto stats = thermal::ThermalSolverCache::instance().stats();
  std::cout << "TL = " << args.tl << " C (effective "
            << format_double(effective_tl, 2) << " C), " << stcls.size()
            << " STCL values; solver cache: " << stats.misses
            << " factorizations, " << stats.hits << " cached solves\n";
  return kExitOk;
}

int cmd_serve(const CommonArgs& args) {
  std::ifstream in_file;
  if (args.in_path != "-") {
    in_file.open(args.in_path);
    if (!in_file) {
      throw InvalidArgument("cannot open requests file '" + args.in_path + "'");
    }
  }
  std::ofstream out_file;
  if (args.out_path != "-") {
    out_file.open(args.out_path);
    if (!out_file) {
      throw InvalidArgument("cannot open results file '" + args.out_path +
                            "' for writing");
    }
  }
  std::istream& in = args.in_path == "-" ? std::cin : in_file;
  std::ostream& out = args.out_path == "-" ? std::cout : out_file;

  scenario::ScenarioRunner runner;
  scenario::ServeOptions options;
  options.threads = static_cast<std::size_t>(std::max(0LL, args.threads));
  options.default_backend = parse_solver_backend(args.solver_backend);
  options.policy = parse_schedule_policy(args.schedule_policy);
  options.dedup = parse_dedup(args.dedup);
  std::unique_ptr<dispatch::DiskResultMemo> disk_memo;
  if (!args.cache_dir.empty()) {
    disk_memo = std::make_unique<dispatch::DiskResultMemo>(args.cache_dir);
    options.disk_memo = disk_memo.get();
    if (!options.dedup) {
      std::cerr << "note: --cache-dir has no effect with --dedup off "
                   "(results are keyed by request content)\n";
    }
  }

  // Self-calibrating cost model (--calibrate on, the default): estimate
  // placement costs with constants fitted from measured wall times.
  // With --cache-dir the fit's state persists next to the result cache
  // ("calibration.v1"), so a restarted server starts warm. Persistence
  // problems are never fatal: a torn or unreadable record just means
  // starting from the hand-tuned defaults.
  std::unique_ptr<dispatch::CostCalibrator> calibrator;
  const std::string calibration_path =
      args.cache_dir.empty() ? "" : args.cache_dir + "/" + "calibration.v1";
  if (parse_calibrate(args.calibrate)) {
    calibrator = std::make_unique<dispatch::CostCalibrator>();
    if (!calibration_path.empty()) {
      try {
        if (const auto payload = persist::read_blob_file(
                persist::real_fs(), calibration_path)) {
          if (auto restored = dispatch::CostCalibrator::deserialize(*payload)) {
            *calibrator = std::move(*restored);
          } else {
            std::cerr << "note: ignoring damaged calibration state in '"
                      << calibration_path << "'\n";
          }
        }
      } catch (const persist::IoError& e) {
        std::cerr << "note: cannot read calibration state: " << e.what()
                  << '\n';
      }
    }
    options.calibrator = calibrator.get();
  }

  // --trace records per-thread spans for exactly the batch window; the
  // recorder is started before the first request is parsed and stopped
  // before any artifact is written, so the trace never observes its own
  // export (docs/OBSERVABILITY.md).
  obs::TraceRecorder& trace = obs::TraceRecorder::instance();
  const bool tracing = !args.trace_path.empty();
  if (tracing) trace.start();

  const scenario::ServeSummary summary =
      scenario::serve_stream(in, out, runner, options);
  if (tracing) trace.stop();

  if (calibrator != nullptr && !calibration_path.empty()) {
    try {
      persist::write_blob_file(persist::real_fs(), args.cache_dir,
                               "calibration.v1", calibrator->serialize());
    } catch (const persist::IoError& e) {
      std::cerr << "note: cannot save calibration state: " << e.what() << '\n';
    }
  }
  // A full disk or closed pipe must be a runtime error, not a silent
  // success with a truncated results file.
  out.flush();
  if (!out.good()) {
    throw Error("failed writing results to '" + args.out_path + "'");
  }

  // Per-batch execution stats (makespan, tail latency, memo hit rate,
  // per-request timings) are summary-only — they may never enter the
  // deterministic results stream, so they get their own file.
  if (!args.summary_json_path.empty()) {
    std::ofstream summary_file(args.summary_json_path);
    if (!summary_file) {
      throw Error("cannot open summary file '" + args.summary_json_path +
                  "' for writing");
    }
    summary_file << scenario::serve_summary_to_json(summary).dump() << '\n';
    summary_file.flush();
    if (!summary_file.good()) {
      throw Error("failed writing summary to '" + args.summary_json_path +
                  "'");
    }
  }

  // Observability artifacts are summary-like: never part of the
  // deterministic results stream, so each gets its own file.
  if (tracing) {
    std::ofstream trace_file(args.trace_path);
    if (!trace_file) {
      throw Error("cannot open trace file '" + args.trace_path +
                  "' for writing");
    }
    trace_file << trace.snapshot_json().dump() << '\n';
    trace_file.flush();
    if (!trace_file.good()) {
      throw Error("failed writing trace to '" + args.trace_path + "'");
    }
  }
  if (!args.metrics_json_path.empty()) {
    std::ofstream metrics_file(args.metrics_json_path);
    if (!metrics_file) {
      throw Error("cannot open metrics file '" + args.metrics_json_path +
                  "' for writing");
    }
    metrics_file << obs::MetricsRegistry::instance().to_json().dump() << '\n';
    metrics_file.flush();
    if (!metrics_file.good()) {
      throw Error("failed writing metrics to '" + args.metrics_json_path +
                  "'");
    }
  }

  // Summary goes to stderr: with --out -, stdout is the results stream
  // and must stay pure (and byte-identical across thread counts; wall
  // time may not appear in it).
  const double rate = summary.wall_seconds > 0.0
                          ? static_cast<double>(summary.requests) /
                                summary.wall_seconds
                          : 0.0;
  std::cerr << "served " << summary.requests << " requests ("
            << summary.succeeded << " ok, " << summary.failed << " failed) in "
            << format_double(summary.wall_seconds, 3) << " s on "
            << summary.threads << " threads (" << format_double(rate, 1)
            << " req/s, policy "
            << dispatch::schedule_policy_name(summary.policy) << ", dedup "
            << (summary.dedup ? "on" : "off") << "); memo hits "
            << summary.memo_hits << "/" << summary.requests
            << "; models built " << summary.runner.model_misses
            << ", reused " << summary.runner.model_hits;
  if (summary.disk_cache_enabled) {
    std::cerr << "; disk cache: " << summary.disk_hits << " hits, "
              << summary.disk_records << " records in "
              << summary.disk_segments << " segments";
  }
  if (summary.calibration_enabled) {
    std::cerr << "; calibration: " << summary.calibration_samples
              << " samples"
              << (summary.calibration_active ? " (fitted constants)"
                                             : " (warming up)");
  }
  if (summary.deadline_requests > 0) {
    std::cerr << "; deadlines: " << summary.deadline_met << "/"
              << summary.deadline_requests << " met";
  }
  std::cerr << '\n';
  // --metrics: the whole registry snapshot as stderr tables, same
  // channel as the one-line summary (stdout stays the results stream).
  if (args.metrics_table) print_metrics_tables(std::cerr, "");
  if (args.out_path == "-") return kExitOk;
  // A short confirmation so the smoke harness (non-empty stdout) and
  // humans both see where the records went.
  std::cout << "wrote " << summary.requests << " result records to "
            << args.out_path << '\n';
  return kExitOk;
}

int cmd_gen(const CommonArgs& args) {
  gen::GenConfig config;
  config.seed = static_cast<std::uint64_t>(args.gen_seed);
  config.count = static_cast<std::size_t>(args.gen_count);
  config.zipf_skew = args.gen_zipf;
  config.dup_rate = args.gen_dup;
  config.mix.sweep = args.gen_mix_sweep;
  config.mix.ptrace = args.gen_mix_ptrace;
  config.mix.chained = args.gen_mix_chained;
  config.mix.grid = args.gen_mix_grid;
  config.deadline_rate = args.gen_deadline_rate;
  config.order = parse_order_pattern(args.gen_order);

  std::ofstream out_file;
  if (args.out_path != "-") {
    out_file.open(args.out_path);
    if (!out_file) {
      throw InvalidArgument("cannot open requests file '" + args.out_path +
                            "' for writing");
    }
  }
  std::ostream& out = args.out_path == "-" ? std::cout : out_file;

  const gen::GeneratedStream stream = gen::generate_stream(config);
  gen::write_stream(stream, out);
  // A full disk or closed pipe must be a runtime error, not a silently
  // truncated stream (same rule as serve's results file).
  out.flush();
  if (!out.good()) {
    throw Error("failed writing requests to '" + args.out_path + "'");
  }

  // Stats go to stderr: with --out -, stdout is the request stream and
  // must stay pure.
  std::cerr << "generated " << stream.stats.count << " requests ("
            << stream.stats.fresh << " fresh, " << stream.stats.duplicates
            << " duplicates; " << stream.stats.sweep << " stcl_sweep, "
            << stream.stats.ptrace << " ptrace, " << stream.stats.chained
            << " chained, " << stream.stats.grid << " grid_steady; ";
  if (config.deadline_rate > 0.0) {
    std::cerr << stream.stats.deadlined << " deadlined; ";
  }
  std::cerr << "order " << gen::order_pattern_name(config.order)
            << ", seed " << config.seed << ")\n";
  if (args.out_path == "-") return kExitOk;
  std::cout << "wrote " << stream.stats.count << " request lines to "
            << args.out_path << '\n';
  return kExitOk;
}

int cmd_cache(const std::string& action, const CommonArgs& args) {
  if (args.cache_dir.empty()) {
    throw InvalidArgument("cache " + action + " requires --cache-dir PATH");
  }
  // Inspection never creates or destroys data: a missing directory is an
  // error, and a schema mismatch is reported instead of wiped (only the
  // serving path — which owns the cache — may invalidate it).
  persist::StoreOptions store_options;
  store_options.schema_revision = dispatch::kResultSchemaRevision;
  store_options.schema_policy = persist::SchemaPolicy::kFailOnMismatch;
  store_options.create_if_missing = false;
  persist::SegmentStore store(args.cache_dir, store_options);

  if (action == "stats") {
    const persist::SegmentStore::Stats stats = store.stats();
    Table table({"metric", "value"});
    table.add_row({"records", std::to_string(stats.records)});
    table.add_row({"segments", std::to_string(stats.segments)});
    table.add_row({"disk bytes", std::to_string(stats.disk_bytes)});
    table.add_row({"schema revision", std::to_string(stats.schema_revision)});
    table.add_row({"damaged frames", std::to_string(stats.damaged_at_open)});
    if (args.csv) table.print_csv(std::cout);
    else table.print(std::cout);
    // The persist latency histograms this process recorded — for
    // `cache stats` that is the recovery scan that just opened the
    // store (docs/OBSERVABILITY.md "Metric catalogue").
    if (!args.csv) print_metrics_tables(std::cout, "persist.");
    return kExitOk;
  }

  if (action == "verify") {
    const persist::SegmentStore::VerifyReport report = store.verify();
    for (const persist::SegmentStore::Damage& damage : report.damage) {
      std::cout << "damage: " << damage.segment << " offset " << damage.offset
                << ": " << damage.reason << '\n';
    }
    std::cout << "verified " << report.segments << " segments: "
              << report.valid_records << " valid records, "
              << report.damage.size() << " damaged\n";
    // Damage is a runtime finding, not a usage mistake — exit 1 so
    // scripts can gate on cache health.
    return report.clean() ? kExitOk : kExitRuntimeError;
  }

  const persist::SegmentStore::Stats before = store.stats();
  const std::size_t carried = store.compact();
  const persist::SegmentStore::Stats after = store.stats();
  std::cout << "compacted " << before.segments << " segments ("
            << before.disk_bytes << " bytes) into 1 (" << after.disk_bytes
            << " bytes), " << carried << " records kept\n";
  return kExitOk;
}

int cmd_info(const CommonArgs& args) {
  const core::SocSpec soc = build_soc(args);
  std::cout << "SoC '" << soc.name << "': " << soc.core_count()
            << " cores, die " << soc.flp.chip_width() * 1e3 << " x "
            << soc.flp.chip_height() * 1e3 << " mm, coverage "
            << format_double(soc.flp.validate().coverage * 100.0, 1) << "%\n";
  Table table({"core", "area [mm2]", "test power [W]",
               "density [W/mm2]", "neighbours", "boundary [mm]"});
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    table.add_row({soc.flp.block(i).name,
                   format_double(soc.flp.block(i).area() * 1e6, 2),
                   format_double(soc.tests[i].power, 1),
                   format_double(soc.power_density(i) * 1e-6, 2),
                   std::to_string(soc.flp.neighbours(i).size()),
                   format_double(soc.flp.boundary_exposure(i) * 1e3, 1)});
  }
  if (args.csv) table.print_csv(std::cout);
  else table.print(std::cout);
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_global_usage(std::cerr);
    return kExitUsageError;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    print_global_usage(std::cout);
    return kExitOk;
  }

  const bool is_schedule = command == "schedule";
  const bool is_simulate = command == "simulate";
  const bool is_sweep = command == "sweep";
  const bool is_serve = command == "serve";
  const bool is_gen = command == "gen";
  const bool is_cache = command == "cache";
  const bool is_info = command == "info";
  if (!is_schedule && !is_simulate && !is_sweep && !is_serve && !is_gen &&
      !is_cache && !is_info) {
    std::cerr << "unknown command '" << command << "'\n\n";
    print_global_usage(std::cerr);
    return kExitUsageError;
  }

  // `cache` takes an action word before its flags; validate it up front
  // so `thermosched cache frobnicate` is a usage error, not a silent
  // default.
  std::string cache_action;
  if (is_cache) {
    if (argc < 3) {
      std::cerr << "error: cache requires an action: stats, verify, or "
                   "compact\n";
      return kExitUsageError;
    }
    cache_action = argv[2];
    if (cache_action != "stats" && cache_action != "verify" &&
        cache_action != "compact" && cache_action != "--help" &&
        cache_action != "-h") {
      std::cerr << "error: unknown cache action '" << cache_action
                << "' (expected stats, verify, or compact)\n";
      return kExitUsageError;
    }
  }

  // Each command registers exactly the flags it understands, so
  // `thermosched <command> --help` is precise and a flag on the wrong
  // command is a usage error instead of a silent no-op.
  CommonArgs args;
  CliParser cli("thermosched " + command, "Thermal-safe SoC test scheduling");
  bool alpha_flag = false;
  if (!is_serve && !is_gen && !is_cache) {
    cli.add_string("flp", "HotSpot .flp floorplan file", &args.flp_path);
    cli.add_double("density", "Uniform test power density for --flp [W/m^2]",
                   &args.density);
    cli.add_flag("alpha", "Use the bundled Alpha-15 SoC (default)", &alpha_flag);
    cli.add_flag("csv", "CSV output", &args.csv);
  }
  if (is_schedule || is_sweep) {
    cli.add_double("tl", "Temperature limit TL [deg C]", &args.tl);
    cli.add_double("stc-scale", "STC normalisation (0 = auto)", &args.stc_scale);
  }
  if (is_schedule) {
    cli.add_double("stcl", "Session thermal characteristic limit", &args.stcl);
  }
  if (is_simulate) {
    cli.add_string("cores", "Comma-separated cores to test concurrently",
                   &args.cores);
  }
  if (is_sweep) {
    cli.add_double("stcl-min", "Smallest STCL of the sweep", &args.stcl_min);
    cli.add_double("stcl-max", "Largest STCL of the sweep", &args.stcl_max);
    cli.add_double("step", "STCL increment", &args.step);
  }
  if (is_serve) {
    cli.add_string("in", "JSONL requests file, - = stdin", &args.in_path);
    cli.add_string("out", "JSONL results file, - = stdout", &args.out_path);
    cli.add_string("schedule-policy",
                   "Execution-start order: fifo (input order), ljf "
                   "(longest-job-first), edf (earliest-deadline-first), "
                   "priority (cost/priority ratio), or srpt (shortest "
                   "first); output bytes are identical either way",
                   &args.schedule_policy);
    cli.add_string("dedup",
                   "Memoize results by request content, on or off "
                   "(duplicate requests execute once; output unchanged)",
                   &args.dedup);
    cli.add_string("calibrate",
                   "Fit cost-model constants from measured wall times, "
                   "on (default) or off; with --cache-dir the fit "
                   "persists across restarts (output unchanged)",
                   &args.calibrate);
    cli.add_string("summary-json",
                   "Write per-batch execution stats (makespan, tail "
                   "latency, memo hit rate, per-request timings) to PATH",
                   &args.summary_json_path);
    cli.add_string("trace",
                   "Record per-thread spans for the batch and write "
                   "Chrome traceEvents JSON to PATH (load in "
                   "chrome://tracing or Perfetto; output bytes "
                   "unchanged — docs/OBSERVABILITY.md)",
                   &args.trace_path);
    cli.add_string("metrics-json",
                   "Write the process-wide metrics snapshot (counters + "
                   "latency histograms) to PATH after the batch",
                   &args.metrics_json_path);
    cli.add_flag("metrics",
                 "Print the metrics snapshot as stderr tables after the "
                 "batch summary",
                 &args.metrics_table);
  }
  if (is_serve || is_cache) {
    cli.add_string("cache-dir",
                   "Directory of the persistent result cache "
                   "(docs/PERSIST.md); serve: created on first use, "
                   "results survive restarts",
                   &args.cache_dir);
  }
  if (is_cache) {
    cli.add_flag("csv", "CSV output (stats)", &args.csv);
  }
  if (is_gen) {
    cli.add_int("count", "Request lines to emit (duplicates included)",
                &args.gen_count);
    cli.add_int("seed", "Stream seed; identical flags + seed = identical "
                        "bytes",
                &args.gen_seed);
    cli.add_double("zipf",
                   "Size skew: Zipf exponent over the synthetic core "
                   "ladder (0 = uniform)",
                   &args.gen_zipf);
    cli.add_double("dup",
                   "Duplicate-line probability in [0, 1) (byte-identical "
                   "copies, what serve's --dedup memoizes)",
                   &args.gen_dup);
    cli.add_string("order",
                   "Arrival order: as-generated, shuffled, sorted, "
                   "sorted-desc, or whale-last",
                   &args.gen_order);
    cli.add_double("mix-sweep", "Relative weight of kind stcl_sweep",
                   &args.gen_mix_sweep);
    cli.add_double("mix-ptrace", "Relative weight of kind ptrace",
                   &args.gen_mix_ptrace);
    cli.add_double("mix-chained", "Relative weight of kind chained",
                   &args.gen_mix_chained);
    cli.add_double("mix-grid", "Relative weight of kind grid_steady",
                   &args.gen_mix_grid);
    cli.add_double("deadline-rate",
                   "Probability in [0, 1] that a fresh request carries a "
                   "deadline_s (half tight / half generous; docs/GEN.md)",
                   &args.gen_deadline_rate);
    cli.add_string("out", "JSONL requests file, - = stdout", &args.out_path);
  }
  if (is_sweep || is_serve) {
    cli.add_int("threads", "Worker threads, 0 = all hardware threads",
                &args.threads);
  }
  if (is_schedule || is_sweep || is_serve) {
    cli.add_string("solver-backend",
                   "Thermal solver backend: dense, sparse, or auto "
                   "(default auto; serve: batch default, an explicit "
                   "solver.backend in a request wins)",
                   &args.solver_backend);
  }

  // For `cache <action>` the flags start after the action word; for
  // `cache --help` the help flag itself must reach the parser.
  const int arg_offset =
      is_cache && cache_action != "--help" && cache_action != "-h" ? 2 : 1;
  try {
    if (!cli.parse(argc - arg_offset, argv + arg_offset)) {
      return kExitOk;  // --help
    }
    // A malformed backend/policy/dedup value is a usage error like any
    // other malformed flag value, so validate it before the command runs.
    if (is_schedule || is_sweep || is_serve) {
      parse_solver_backend(args.solver_backend);
    }
    if (is_serve) {
      parse_schedule_policy(args.schedule_policy);
      parse_dedup(args.dedup);
      parse_calibrate(args.calibrate);
    }
    if (is_gen) {
      parse_order_pattern(args.gen_order);
      if (args.gen_count < 1) {
        throw InvalidArgument("--count must be >= 1");
      }
      if (args.gen_seed < 0) {
        throw InvalidArgument("--seed must be >= 0");
      }
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitUsageError;
  }
  args.alpha = alpha_flag;

  try {
    if (is_schedule) return cmd_schedule(args);
    if (is_simulate) return cmd_simulate(args);
    if (is_sweep) return cmd_sweep(args);
    if (is_serve) return cmd_serve(args);
    if (is_gen) return cmd_gen(args);
    if (is_cache) return cmd_cache(cache_action, args);
    return cmd_info(args);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitRuntimeError;
  }
}
