// thermosched: command-line front end for the ThermoSched library.
//
//   thermosched schedule [--flp chip.flp --density 1e6 | --alpha]
//                        [--tl 155] [--stcl 50] [--csv]
//   thermosched simulate --cores Icache,Dcache [--flp ... --density ...]
//   thermosched sweep    [--alpha] [--tl 155] [--stcl-min 20]
//                        [--stcl-max 100] [--step 10] [--threads 0] [--csv]
//   thermosched info     [--flp chip.flp | --alpha]
//
// `schedule` runs Algorithm 1 and prints the thermal-safe schedule;
// `simulate` runs one session through the RC oracle and prints per-core
// peaks plus an ASCII thermal map; `sweep` runs Algorithm 1 once per
// STCL value in the given range, fanned across a thread pool that
// shares the model's cached factorizations (src/sweep); `info` prints
// floorplan statistics (areas, adjacency, boundary exposure, power
// densities).
#include <algorithm>
#include <iostream>
#include <memory>

#include "core/stcl_sweep.hpp"
#include "core/thermal_scheduler.hpp"
#include "floorplan/flp_io.hpp"
#include "soc/alpha.hpp"
#include "thermal/analyzer.hpp"
#include "thermal/solver_cache.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/heatmap.hpp"

using namespace thermo;

namespace {

struct CommonArgs {
  std::string flp_path;
  double density = 1.0e6;
  bool alpha = false;
  double tl = 155.0;
  double stcl = 50.0;
  double stc_scale = 0.0;  // 0 = auto
  std::string cores;
  bool csv = false;
  // sweep-only knobs
  double stcl_min = 20.0;
  double stcl_max = 100.0;
  double step = 10.0;
  long long threads = 0;  // 0 = hardware concurrency
};

core::SocSpec build_soc(const CommonArgs& args) {
  if (args.alpha || args.flp_path.empty()) {
    return soc::alpha_soc();
  }
  core::SocSpec soc;
  soc.flp = floorplan::load_flp(args.flp_path);
  soc.name = soc.flp.name();
  soc.package = thermal::PackageParams{};
  for (std::size_t i = 0; i < soc.flp.size(); ++i) {
    soc.tests.push_back(
        core::CoreTest{args.density * soc.flp.block(i).area(), 1.0});
  }
  soc.validate();
  return soc;
}

double stc_scale_for(const CommonArgs& args) {
  if (args.stc_scale > 0.0) return args.stc_scale;
  return args.alpha || args.flp_path.empty() ? soc::alpha_stc_scale() : 2.8e-3;
}

int cmd_schedule(const CommonArgs& args) {
  const core::SocSpec soc = build_soc(args);
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::ThermalSchedulerOptions options;
  options.temperature_limit = args.tl;
  options.stc_limit = args.stcl;
  options.model.stc_scale = stc_scale_for(args);
  options.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
  const core::ThermalAwareScheduler scheduler(options);
  const core::ScheduleResult result = scheduler.generate(soc, analyzer);

  for (const std::string& note : result.notes) std::cerr << "note: " << note << '\n';
  Table table({"session", "cores", "length [s]", "max temp [C]"});
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    table.add_row({"TS" + std::to_string(i + 1),
                   result.outcomes[i].session.to_string(soc),
                   format_double(result.outcomes[i].length, 2),
                   format_double(result.outcomes[i].max_temperature, 2)});
  }
  if (args.csv) table.print_csv(std::cout);
  else table.print(std::cout);
  std::cout << "length=" << result.schedule_length
            << "s effort=" << result.simulation_effort
            << "s max=" << format_double(result.max_temperature, 2)
            << "C (TL " << scheduler.effective_temperature_limit() << "C)\n";
  return 0;
}

int cmd_simulate(const CommonArgs& args) {
  if (args.cores.empty()) {
    throw InvalidArgument("simulate requires --cores a,b,c");
  }
  const core::SocSpec soc = build_soc(args);
  thermal::ThermalAnalyzer analyzer(soc.flp, soc.package);
  core::TestSession session;
  for (const std::string& raw : split(args.cores, ',')) {
    const std::string name{trim(raw)};
    const auto index = soc.flp.index_of(name);
    if (!index) throw InvalidArgument("no core named '" + name + "'");
    session.cores.push_back(*index);
  }
  const thermal::SessionSimulation sim =
      analyzer.simulate_session(session.power_map(soc), session.length(soc));

  Table table({"core", "power [W]", "peak temp [C]"});
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    table.add_row({soc.flp.block(i).name,
                   format_double(session.contains(i) ? soc.tests[i].power : 0.0, 1),
                   format_double(sim.peak_temperature[i], 2)});
  }
  if (args.csv) table.print_csv(std::cout);
  else table.print(std::cout);
  std::cout << "\nmax " << format_double(sim.max_temperature, 2) << " C in '"
            << soc.flp.block(sim.hottest_block).name << "'\n\n"
            << viz::ascii_block_map(soc.flp, sim.peak_temperature, 56);
  return 0;
}

int cmd_sweep(const CommonArgs& args) {
  const std::vector<double> stcls =
      core::stcl_range(args.stcl_min, args.stcl_max, args.step);
  const core::SocSpec soc = build_soc(args);
  // One shared model: every per-STCL analyzer keys the same cached
  // factorizations, so the RC network is factored once for the whole
  // sweep no matter how many threads run.
  const auto model =
      std::make_shared<const thermal::RCModel>(soc.flp, soc.package);

  core::StclSweepConfig config;
  config.threads = static_cast<std::size_t>(std::max(0LL, args.threads));
  config.scheduler.temperature_limit = args.tl;
  config.scheduler.model.stc_scale = stc_scale_for(args);
  config.scheduler.solo_policy = core::SoloViolationPolicy::kRaiseLimit;
  const std::vector<core::StclSweepPoint> points =
      core::sweep_stcl(soc, model, stcls, config);

  Table table({"STCL", "length [s]", "effort [s]", "sessions", "max temp [C]",
               "discards"});
  for (const core::StclSweepPoint& point : points) {
    table.add_row({format_double(point.stcl, 0),
                   format_double(point.schedule_length, 1),
                   format_double(point.simulation_effort, 1),
                   std::to_string(point.sessions),
                   format_double(point.max_temperature, 2),
                   std::to_string(point.discarded_sessions)});
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  // Under kRaiseLimit the scheduler may enforce a higher TL than asked
  // for; report it like cmd_schedule does or the table rows would
  // appear to violate the printed limit.
  double effective_tl = args.tl;
  for (const core::StclSweepPoint& point : points) {
    effective_tl = std::max(effective_tl, point.effective_temperature_limit);
  }
  const auto stats = thermal::ThermalSolverCache::instance().stats();
  std::cout << "TL = " << args.tl << " C (effective "
            << format_double(effective_tl, 2) << " C), " << stcls.size()
            << " STCL values; solver cache: " << stats.misses
            << " factorizations, " << stats.hits << " cached solves\n";
  return 0;
}

int cmd_info(const CommonArgs& args) {
  const core::SocSpec soc = build_soc(args);
  std::cout << "SoC '" << soc.name << "': " << soc.core_count()
            << " cores, die " << soc.flp.chip_width() * 1e3 << " x "
            << soc.flp.chip_height() * 1e3 << " mm, coverage "
            << format_double(soc.flp.validate().coverage * 100.0, 1) << "%\n";
  Table table({"core", "area [mm2]", "test power [W]",
               "density [W/mm2]", "neighbours", "boundary [mm]"});
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    table.add_row({soc.flp.block(i).name,
                   format_double(soc.flp.block(i).area() * 1e6, 2),
                   format_double(soc.tests[i].power, 1),
                   format_double(soc.power_density(i) * 1e-6, 2),
                   std::to_string(soc.flp.neighbours(i).size()),
                   format_double(soc.flp.boundary_exposure(i) * 1e3, 1)});
  }
  if (args.csv) table.print_csv(std::cout);
  else table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: thermosched <schedule|simulate|sweep|info> [options]\n"
                 "       thermosched <command> --help\n";
    return 1;
  }
  const std::string command = argv[1];

  CommonArgs args;
  CliParser cli("thermosched " + command, "Thermal-safe SoC test scheduling");
  cli.add_string("flp", "HotSpot .flp floorplan file", &args.flp_path);
  cli.add_double("density", "Uniform test power density for --flp [W/m^2]",
                 &args.density);
  bool alpha_flag = false;
  cli.add_flag("alpha", "Use the bundled Alpha-15 SoC", &alpha_flag);
  cli.add_double("tl", "Temperature limit TL [deg C]", &args.tl);
  cli.add_double("stcl", "Session thermal characteristic limit", &args.stcl);
  cli.add_double("stc-scale", "STC normalisation (0 = auto)", &args.stc_scale);
  cli.add_string("cores", "Comma-separated cores (simulate)", &args.cores);
  cli.add_flag("csv", "CSV output", &args.csv);
  cli.add_double("stcl-min", "Smallest STCL (sweep)", &args.stcl_min);
  cli.add_double("stcl-max", "Largest STCL (sweep)", &args.stcl_max);
  cli.add_double("step", "STCL increment (sweep)", &args.step);
  cli.add_int("threads", "Worker threads, 0 = all cores (sweep)",
              &args.threads);

  try {
    if (!cli.parse(argc - 1, argv + 1)) return 0;
    args.alpha = alpha_flag;
    if (command == "schedule") return cmd_schedule(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "info") return cmd_info(args);
    std::cerr << "unknown command '" << command << "'\n";
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
